"""Opt-in peephole optimisation of generated assembly.

The code generator keeps locals in stack slots, so straight-line code is
full of ``sw``/``lw`` pairs against ``$sp``.  This pass performs
store-to-load forwarding and copy cleanup within straight-line windows
(between labels and control transfers):

- ``sw $rX, k($sp)`` followed by ``lw $rY, k($sp)`` (with ``$rX`` still
  live and no clobbering store in between) becomes ``move $rY, $rX``;
- a reload of a slot whose value is already in the target register is
  dropped;
- ``move $r, $r`` is dropped.

The pass is *off by default*: the paper-facing calibration (and every
number in EXPERIMENTS.md) is defined against the plain ``-O0``-style
output.  `benchmarks/bench_compiler_quality.py` uses this pass to show
that DIM's relative gains are robust to window-local code cleanup
(cross-iteration redundancy would need real register allocation).
"""

from __future__ import annotations

import re
from typing import Dict, List

_STORE_RE = re.compile(r"^\s*sw\s+(\$\w+),\s*(-?\d+)\(\$sp\)\s*$")
_LOAD_RE = re.compile(r"^\s*lw\s+(\$\w+),\s*(-?\d+)\(\$sp\)\s*$")
_MOVE_RE = re.compile(r"^\s*move\s+(\$\w+),\s*(\$\w+)\s*$")
#: first written register of common instruction forms (dest-first ops).
_DEF_RE = re.compile(
    r"^\s*(?:addu|subu|addiu|and|andi|or|ori|xor|xori|nor|slt|sltu|slti"
    r"|sltiu|sll|srl|sra|sllv|srlv|srav|lui|li|la|lw|lh|lhu|lb|lbu|mflo"
    r"|mfhi|move|seq|sne|neg|negu|not)\s+(\$\w+)")
#: anything that ends a straight-line window.
_BARRIER_RE = re.compile(
    r"^\s*(?:j|jal|jr|jalr|b|beq|bne|blez|bgtz|bltz|bgez|beqz|bnez|blt"
    r"|bge|bgt|ble|bltu|bgeu|bgtu|bleu|syscall|break)\b")


class _Window:
    """Forwarding state inside one straight-line window."""

    def __init__(self) -> None:
        #: sp-offset -> register known to hold that slot's value.
        self.slot_reg: Dict[int, str] = {}

    def invalidate_register(self, reg: str) -> None:
        for offset in [o for o, r in self.slot_reg.items() if r == reg]:
            del self.slot_reg[offset]

    def clear(self) -> None:
        self.slot_reg.clear()


def optimize_assembly(text: str) -> str:
    """Apply the peephole pass to an assembly module."""
    out: List[str] = []
    window = _Window()
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#") \
                or stripped.startswith("."):
            out.append(line)
            continue
        if stripped.endswith(":") or _BARRIER_RE.match(stripped):
            window.clear()
            out.append(line)
            continue

        store = _STORE_RE.match(line)
        if store is not None:
            reg, offset = store.group(1), int(store.group(2))
            window.slot_reg[offset] = reg
            out.append(line)
            continue

        load = _LOAD_RE.match(line)
        if load is not None:
            reg, offset = load.group(1), int(load.group(2))
            known = window.slot_reg.get(offset)
            if known == reg:
                continue  # value already there: drop the reload
            if known is not None:
                indent = line[:len(line) - len(line.lstrip())]
                out.append(f"{indent}move {reg}, {known}")
                window.invalidate_register(reg)
                window.slot_reg[offset] = reg
                continue
            window.invalidate_register(reg)
            window.slot_reg[offset] = reg
            out.append(line)
            continue

        move = _MOVE_RE.match(line)
        if move is not None and move.group(1) == move.group(2):
            continue  # move $r, $r

        # memory writes through other bases may alias any slot
        if stripped.startswith(("sw", "sh", "sb")):
            window.clear()
            out.append(line)
            continue

        defined = _DEF_RE.match(line)
        if defined is not None:
            window.invalidate_register(defined.group(1))
        out.append(line)
    return "\n".join(out) + ("\n" if text.endswith("\n") else "")
