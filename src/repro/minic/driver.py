"""mini-C compilation driver."""

from __future__ import annotations

from typing import Optional

from repro.asm import assemble
from repro.asm.program import Program
from repro.minic.codegen import CodegenError, generate
from repro.minic.lexer import LexerError
from repro.minic.optimizer import optimize_assembly
from repro.minic.parser import ParseError, parse
from repro.minic.sema import SemaError, analyze


class CompileError(Exception):
    """Wraps any stage failure with the stage name."""

    def __init__(self, stage: str, cause: Exception):
        super().__init__(f"{stage}: {cause}")
        self.stage = stage
        self.cause = cause


def compile_source(source: str, optimize: bool = False) -> str:
    """Compile mini-C source to MIPS assembly text.

    ``optimize`` enables the peephole pass (store-to-load forwarding);
    it is off by default — the paper-facing calibration is defined
    against the plain output (see `repro.minic.optimizer`).
    """
    try:
        unit = parse(source)
    except (LexerError, ParseError) as exc:
        raise CompileError("parse", exc) from exc
    try:
        sema = analyze(unit)
    except SemaError as exc:
        raise CompileError("sema", exc) from exc
    try:
        text = generate(sema)
    except CodegenError as exc:
        raise CompileError("codegen", exc) from exc
    if optimize:
        text = optimize_assembly(text)
    return text


def compile_to_program(source: str,
                       source_name: Optional[str] = None,
                       optimize: bool = False) -> Program:
    """Compile mini-C source to a loadable :class:`Program`.

    The program starts at ``__start``, which calls ``main`` and exits
    with its return value (low 8 bits).
    """
    asm_text = compile_source(source, optimize=optimize)
    program = assemble(asm_text)
    if source_name:
        program.source_name = source_name
    return program
