"""Suite-level evaluation API.

One call evaluates the whole Table 2 suite (or any subset) against a
system configuration and returns structured results that the CLI and
the benchmark harnesses can aggregate, print, or serialise.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional

from repro.system.config import SystemConfig, paper_system
from repro.system.energy import EnergyParams, energy_ratio
from repro.system.traceeval import (
    SystemMetrics,
    baseline_metrics,
    evaluate_trace,
)
from repro.workloads import run_workload, workload_names


@dataclass(frozen=True)
class WorkloadResult:
    """One (workload, system) evaluation."""

    workload: str
    system: str
    baseline_cycles: int
    cycles: int
    speedup: float
    energy_ratio: float
    instructions: int
    array_coverage: float
    cache_hit_rate: float
    misspeculations: int
    flushes: int

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class SuiteResult:
    """All workloads against one system."""

    system: str
    results: List[WorkloadResult]

    @property
    def geomean_speedup(self) -> float:
        product = 1.0
        for result in self.results:
            product *= result.speedup
        return product ** (1.0 / len(self.results)) if self.results else 0.0

    @property
    def geomean_energy_ratio(self) -> float:
        product = 1.0
        for result in self.results:
            product *= result.energy_ratio
        return product ** (1.0 / len(self.results)) if self.results else 0.0

    def to_json(self) -> str:
        return json.dumps({
            "system": self.system,
            "geomean_speedup": self.geomean_speedup,
            "geomean_energy_ratio": self.geomean_energy_ratio,
            "results": [r.as_dict() for r in self.results],
        }, indent=2)


def result_from_metrics(name: str, config: SystemConfig,
                        base: SystemMetrics, metrics: SystemMetrics,
                        energy_params: EnergyParams) -> WorkloadResult:
    """Fold (baseline, accelerated) metrics into one result row.

    This is the single place a :class:`WorkloadResult` is derived from
    metrics: :func:`evaluate_suite` and the matrix sweep engine
    (:mod:`repro.system.sweep`) both route through it, which is what
    guarantees their JSON outputs agree byte for byte.
    """
    return WorkloadResult(
        workload=name,
        system=config.name,
        baseline_cycles=base.cycles,
        cycles=metrics.cycles,
        speedup=base.cycles / metrics.cycles,
        energy_ratio=energy_ratio(base, metrics, energy_params),
        instructions=metrics.instructions,
        array_coverage=metrics.dim.array_instructions
        / max(1, metrics.instructions),
        cache_hit_rate=metrics.cache_hits
        / max(1, metrics.cache_lookups),
        misspeculations=metrics.dim.misspeculations,
        flushes=metrics.dim.flushes,
    )


def _evaluate_one(name: str, config: SystemConfig,
                  energy_params: EnergyParams,
                  fast: bool) -> WorkloadResult:
    """Trace and evaluate a single workload (also the pool entry point)."""
    plain = run_workload(name, fast=fast)
    base = baseline_metrics(plain.trace, config.timing)
    metrics = evaluate_trace(plain.trace, config, name=name)
    return result_from_metrics(name, config, base, metrics, energy_params)


def _suite_worker(args) -> WorkloadResult:
    name, config, energy_params, fast = args
    return _evaluate_one(name, config, energy_params, fast)


def evaluate_suite(config: Optional[SystemConfig] = None,
                   names: Optional[Iterable[str]] = None,
                   energy_params: EnergyParams = EnergyParams(),
                   jobs: int = 1,
                   fast: bool = False) -> SuiteResult:
    """Evaluate workloads against ``config`` (default: C#2/64/spec).

    Traces are computed once per process and cached by
    :mod:`repro.workloads`, so repeated calls with different
    configurations are cheap.  ``jobs > 1`` fans the per-workload
    trace+evaluate work across a process pool; results are returned in
    the same (requested) order and are numerically identical to the
    serial path — both run :func:`_evaluate_one` — so the JSON output is
    byte-identical regardless of ``jobs``.  ``fast`` traces workloads
    through the block-compiled simulator (bit-identical by invariant).
    """
    config = config or paper_system("C2", 64, True)
    names = list(names) if names is not None else workload_names()
    if jobs > 1 and len(names) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(names))) as pool:
            results = list(pool.map(
                _suite_worker,
                [(name, config, energy_params, fast) for name in names]))
    else:
        results = [_evaluate_one(name, config, energy_params, fast)
                   for name in names]
    return SuiteResult(config.name, results)


def format_suite(result: SuiteResult) -> str:
    """Human-readable suite report."""
    lines = [f"suite @ {result.system}",
             f"{'workload':14s} {'speedup':>8s} {'energy':>7s} "
             f"{'coverage':>9s} {'hit rate':>9s} {'misspec':>8s}"]
    for r in result.results:
        lines.append(f"{r.workload:14s} {r.speedup:>7.2f}x "
                     f"{r.energy_ratio:>6.2f}x {r.array_coverage:>8.1%} "
                     f"{r.cache_hit_rate:>8.1%} {r.misspeculations:>8d}")
    lines.append(f"{'GEOMEAN':14s} {result.geomean_speedup:>7.2f}x "
                 f"{result.geomean_energy_ratio:>6.2f}x")
    return "\n".join(lines)
