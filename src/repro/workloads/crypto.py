"""Rijndael (AES-128) encode/decode — Table 2's most dataflow-heavy rows.

Real AES-128 (verified by a round-trip check inside the workload itself):
S-boxes as data tables, the xtime table built at run time, and — like the
MiBench rijndael implementation — the nine middle rounds *unrolled in the
source*, which is what gives the benchmark its signature structure: many
distinct, large, branch-poor basic blocks.  That structure is why the
paper's Rijndael rows are so sensitive to the reconfiguration-cache size
(1.05x with 16 slots vs 3.46x with 64 on C#3).
"""

from __future__ import annotations

from typing import List

from repro.workloads import Workload


def _aes_sbox() -> List[int]:
    """Compute the AES S-box (used only to emit the data table)."""
    # GF(2^8) inverse via exponentiation tables.
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    sbox = []
    for value in range(256):
        inv = 0 if value == 0 else exp[(255 - log[value]) % 255]
        result = inv
        for _ in range(4):
            inv = ((inv << 1) | (inv >> 7)) & 0xFF
            result ^= inv
        sbox.append(result ^ 0x63)
    return sbox


_SBOX = _aes_sbox()
_INV_SBOX = [0] * 256
for _i, _v in enumerate(_SBOX):
    _INV_SBOX[_v] = _i

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]

#: ShiftRows source index for destination byte i (dest[i] = src[SHIFT[i]]).
_SHIFT = [4 * ((c + r) % 4) + r for c in range(4) for r in range(4)]
#: InvShiftRows source index.
_INV_SHIFT = [4 * ((c - r) % 4) + r for c in range(4) for r in range(4)]


def _table(values: List[int]) -> str:
    return ", ".join(str(v) for v in values)


def _sub_shift(table: str, shift: List[int]) -> str:
    lines = [f"    t[{i}] = {table}[st[{shift[i]}]];" for i in range(16)]
    return "\n".join(lines)


def _mix_columns_loop() -> str:
    return """    for (c = 0; c < 4; c++) {
        b = c << 2;
        a0 = t[b]; a1 = t[b + 1]; a2 = t[b + 2]; a3 = t[b + 3];
        st[b] = xt[a0 ^ a1] ^ a1 ^ a2 ^ a3;
        st[b + 1] = xt[a1 ^ a2] ^ a2 ^ a3 ^ a0;
        st[b + 2] = xt[a2 ^ a3] ^ a3 ^ a0 ^ a1;
        st[b + 3] = xt[a3 ^ a0] ^ a0 ^ a1 ^ a2;
    }"""


def _inv_mix_columns_loop() -> str:
    return """    for (c = 0; c < 4; c++) {
        b = c << 2;
        a0 = st[b]; a1 = st[b + 1]; a2 = st[b + 2]; a3 = st[b + 3];
        m0 = xt[a0]; m1 = xt[a1]; m2 = xt[a2]; m3 = xt[a3];
        n0 = xt[m0]; n1 = xt[m1]; n2 = xt[m2]; n3 = xt[m3];
        p0 = xt[n0]; p1 = xt[n1]; p2 = xt[n2]; p3 = xt[n3];
        st[b] = (p0 ^ n0 ^ m0) ^ (p1 ^ m1 ^ a1) ^ (p2 ^ n2 ^ a2)
              ^ (p3 ^ a3);
        st[b + 1] = (p0 ^ a0) ^ (p1 ^ n1 ^ m1) ^ (p2 ^ m2 ^ a2)
              ^ (p3 ^ n3 ^ a3);
        st[b + 2] = (p0 ^ n0 ^ a0) ^ (p1 ^ a1) ^ (p2 ^ n2 ^ m2)
              ^ (p3 ^ m3 ^ a3);
        st[b + 3] = (p0 ^ m0 ^ a0) ^ (p1 ^ n1 ^ a1) ^ (p2 ^ a2)
              ^ (p3 ^ n3 ^ m3);
    }"""


def _add_round_key(round_index: int) -> str:
    base = 16 * round_index
    lines = [f"    st[{i}] = st[{i}] ^ rkey[{base + i}];"
             for i in range(16)]
    return "\n".join(lines)


_COMMON = f"""
unsigned char sbox[256] = {{{_table(_SBOX)}}};
unsigned char isbox[256] = {{{_table(_INV_SBOX)}}};
unsigned char rcon[10] = {{{_table(_RCON)}}};
unsigned char xt[256];
unsigned char rkey[176];
unsigned char st[16];
unsigned char t[16];
unsigned char buf[256];
unsigned char ref[256];

void build_xtime() {{
    int i;
    int v;
    for (i = 0; i < 256; i++) {{
        v = i << 1;
        if (v & 0x100) {{ v = v ^ 0x11b; }}
        xt[i] = v & 0xff;
    }}
}}

void init_data() {{
    int i;
    unsigned seed = 0x12345678;
    for (i = 0; i < 16; i++) {{
        seed = seed * 1103515245 + 12345;
        rkey[i] = (seed >> 16) & 0xff;
    }}
    for (i = 0; i < 256; i++) {{
        seed = seed * 1103515245 + 12345;
        buf[i] = (seed >> 16) & 0xff;
        ref[i] = buf[i];
    }}
}}

void expand_key() {{
    int i;
    int base;
    int t0; int t1; int t2; int t3; int tmp;
    for (i = 4; i < 44; i++) {{
        base = i << 2;
        t0 = rkey[base - 4];
        t1 = rkey[base - 3];
        t2 = rkey[base - 2];
        t3 = rkey[base - 1];
        if ((i & 3) == 0) {{
            tmp = t0;
            t0 = sbox[t1] ^ rcon[(i >> 2) - 1];
            t1 = sbox[t2];
            t2 = sbox[t3];
            t3 = sbox[tmp];
        }}
        rkey[base] = rkey[base - 16] ^ t0;
        rkey[base + 1] = rkey[base - 15] ^ t1;
        rkey[base + 2] = rkey[base - 14] ^ t2;
        rkey[base + 3] = rkey[base - 13] ^ t3;
    }}
}}

void load_block(int off) {{
    int i;
    for (i = 0; i < 16; i++) {{ st[i] = buf[off + i]; }}
}}

void store_block(int off) {{
    int i;
    for (i = 0; i < 16; i++) {{ buf[off + i] = st[i]; }}
}}
"""


def _encrypt_body() -> str:
    parts = ["void encrypt_block(int off) {",
             "    int c; int b;",
             "    int a0; int a1; int a2; int a3;",
             "    load_block(off);",
             _add_round_key(0)]
    for r in range(1, 10):
        parts.append(f"    // round {r}")
        parts.append(_sub_shift("sbox", _SHIFT))
        parts.append(_mix_columns_loop())
        parts.append(_add_round_key(r))
    parts.append("    // final round")
    parts.append(_sub_shift("sbox", _SHIFT))
    parts.append("\n".join(f"    st[{i}] = t[{i}];" for i in range(16)))
    parts.append(_add_round_key(10))
    parts.append("    store_block(off);")
    parts.append("}")
    return "\n".join(parts)


def _decrypt_body() -> str:
    parts = ["void decrypt_block(int off) {",
             "    int c; int b;",
             "    int a0; int a1; int a2; int a3;",
             "    int m0; int m1; int m2; int m3;",
             "    int n0; int n1; int n2; int n3;",
             "    int p0; int p1; int p2; int p3;",
             "    load_block(off);",
             _add_round_key(10)]
    for r in range(9, 0, -1):
        parts.append(f"    // inverse round {r}")
        parts.append(_sub_shift("isbox", _INV_SHIFT))
        parts.append("\n".join(f"    st[{i}] = t[{i}];" for i in range(16)))
        parts.append(_add_round_key(r))
        parts.append(_inv_mix_columns_loop())
    parts.append("    // final inverse round")
    parts.append(_sub_shift("isbox", _INV_SHIFT))
    parts.append("\n".join(f"    st[{i}] = t[{i}];" for i in range(16)))
    parts.append(_add_round_key(0))
    parts.append("    store_block(off);")
    parts.append("}")
    return "\n".join(parts)


_ENC_MAIN = """
int main() {
    int b;
    int i;
    unsigned check = 0;
    build_xtime();
    init_data();
    expand_key();
    for (b = 0; b < 16; b++) {
        encrypt_block(b << 4);
    }
    for (i = 0; i < 256; i++) {
        check = check * 31 + buf[i];
    }
    print_str("rijndael_e ");
    print_int(check & 0x7fffffff);
    print_char('\\n');
    return 0;
}
"""

_DEC_MAIN = """
int main() {
    int b;
    int i;
    int ok = 1;
    unsigned check = 0;
    build_xtime();
    init_data();
    expand_key();
    for (b = 0; b < 16; b++) {
        encrypt_block(b << 4);
    }
    for (b = 0; b < 16; b++) {
        decrypt_block(b << 4);
    }
    for (i = 0; i < 256; i++) {
        check = check * 31 + buf[i];
        if (buf[i] != ref[i]) { ok = 0; }
    }
    print_str("rijndael_d ");
    print_int(check & 0x7fffffff);
    print_char(' ');
    if (ok) { print_str("roundtrip_ok"); } else { print_str("MISMATCH"); }
    print_char('\\n');
    return 0;
}
"""

RIJNDAEL_E = Workload(
    name="rijndael_e",
    paper_name="Rijindael E.",
    category="dataflow",
    source=_COMMON + _encrypt_body() + _ENC_MAIN,
    description="AES-128 encryption of 16 blocks, rounds unrolled",
)

RIJNDAEL_D = Workload(
    name="rijndael_d",
    paper_name="Rijindael D.",
    category="dataflow",
    source=(_COMMON + _encrypt_body() + "\n" + _decrypt_body()
            + _DEC_MAIN),
    description="AES-128 decryption (with encryption) and round-trip check",
)
