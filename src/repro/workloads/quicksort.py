"""Quicksort (MiBench `qsort`).

Recursive quicksort with Hoare partitioning plus an insertion-sort
finish for small ranges, over a pseudo-random int array, with a final
sortedness check.  Compare-and-swap loops make it one of the most
control-oriented entries; the paper singles it out ("even for very
control oriented algorithms such as ... Quicksort") with speedups around
1.4-2.7x.
"""

from repro.workloads import Workload

_SOURCE = r"""
int arr[700];

void fill() {
    int i;
    unsigned seed = 0x9507;
    for (i = 0; i < 700; i++) {
        seed = seed * 1103515245 + 12345;
        arr[i] = (seed >> 8) & 0xffff;
    }
}

void insertion(int lo, int hi) {
    int i;
    int j;
    int v;
    for (i = lo + 1; i <= hi; i++) {
        v = arr[i];
        j = i - 1;
        while (j >= lo && arr[j] > v) {
            arr[j + 1] = arr[j];
            j--;
        }
        arr[j + 1] = v;
    }
}

void quicksort(int lo, int hi) {
    int i;
    int j;
    int pivot;
    int t;
    if (hi - lo < 8) {
        insertion(lo, hi);
        return;
    }
    pivot = arr[(lo + hi) >> 1];
    i = lo;
    j = hi;
    while (i <= j) {
        while (arr[i] < pivot) { i++; }
        while (arr[j] > pivot) { j--; }
        if (i <= j) {
            t = arr[i];
            arr[i] = arr[j];
            arr[j] = t;
            i++;
            j--;
        }
    }
    if (lo < j) { quicksort(lo, j); }
    if (i < hi) { quicksort(i, hi); }
}

int main() {
    int pass;
    int i;
    unsigned check = 0;
    for (pass = 0; pass < 2; pass++) {
        fill();
        arr[0] = arr[0] + pass;  // perturb so passes differ
        quicksort(0, 699);
        for (i = 1; i < 700; i++) {
            if (arr[i - 1] > arr[i]) {
                print_str("quicksort NOT SORTED\n");
                return 1;
            }
        }
        check = check * 31 + arr[350];
    }
    print_str("quicksort ");
    print_int(check & 0x7fffffff);
    print_char('\n');
    return 0;
}
"""

QUICKSORT = Workload(
    name="quicksort",
    paper_name="Quicksort",
    category="control",
    source=_SOURCE,
    description="recursive quicksort of 700 ints x 2 passes, verified",
)
