"""SHA-1 — dataflow-heavy hashing (MiBench `sha`).

A real SHA-1 compression function: 80 rounds in four 20-round loops plus
the 64-entry message schedule.  Long dependence chains of ALU operations
with very few branches — exactly the code the paper's array accelerates
best (SHA shows the largest speculative speedup in Table 2, 4.8x).
"""

from repro.workloads import Workload

_SOURCE = r"""
unsigned w[80];
unsigned char data[256];
unsigned h0; unsigned h1; unsigned h2; unsigned h3; unsigned h4;

void init_data() {
    int i;
    unsigned seed = 0xbeef1234;
    for (i = 0; i < 256; i++) {
        seed = seed * 1103515245 + 12345;
        data[i] = (seed >> 16) & 0xff;
    }
}

void sha_init() {
    h0 = 0x67452301;
    h1 = 0xefcdab89;
    h2 = 0x98badcfe;
    h3 = 0x10325476;
    h4 = 0xc3d2e1f0;
}

void sha_block(int off) {
    int t;
    int b4;
    unsigned a; unsigned b; unsigned c; unsigned d; unsigned e;
    unsigned tmp;
    for (t = 0; t < 16; t++) {
        b4 = off + (t << 2);
        w[t] = (data[b4] << 24) | (data[b4 + 1] << 16)
             | (data[b4 + 2] << 8) | data[b4 + 3];
    }
    for (t = 16; t < 80; t++) {
        tmp = w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16];
        w[t] = (tmp << 1) | (tmp >> 31);
    }
    a = h0; b = h1; c = h2; d = h3; e = h4;
    for (t = 0; t < 20; t++) {
        tmp = ((a << 5) | (a >> 27)) + ((b & c) | (~b & d)) + e
            + w[t] + 0x5a827999;
        e = d;
        d = c;
        c = (b << 30) | (b >> 2);
        b = a;
        a = tmp;
    }
    for (t = 20; t < 40; t++) {
        tmp = ((a << 5) | (a >> 27)) + (b ^ c ^ d) + e + w[t]
            + 0x6ed9eba1;
        e = d;
        d = c;
        c = (b << 30) | (b >> 2);
        b = a;
        a = tmp;
    }
    for (t = 40; t < 60; t++) {
        tmp = ((a << 5) | (a >> 27)) + ((b & c) | (b & d) | (c & d)) + e
            + w[t] + 0x8f1bbcdc;
        e = d;
        d = c;
        c = (b << 30) | (b >> 2);
        b = a;
        a = tmp;
    }
    for (t = 60; t < 80; t++) {
        tmp = ((a << 5) | (a >> 27)) + (b ^ c ^ d) + e + w[t]
            + 0xca62c1d6;
        e = d;
        d = c;
        c = (b << 30) | (b >> 2);
        b = a;
        a = tmp;
    }
    h0 = h0 + a;
    h1 = h1 + b;
    h2 = h2 + c;
    h3 = h3 + d;
    h4 = h4 + e;
}

int main() {
    int pass;
    int blk;
    unsigned digest;
    init_data();
    sha_init();
    for (pass = 0; pass < 10; pass++) {
        for (blk = 0; blk < 4; blk++) {
            sha_block(blk << 6);
        }
    }
    digest = h0 ^ h1 ^ h2 ^ h3 ^ h4;
    print_str("sha ");
    print_int(digest & 0x7fffffff);
    print_char('\n');
    return 0;
}
"""

SHA = Workload(
    name="sha",
    paper_name="SHA",
    category="dataflow",
    source=_SOURCE,
    description="SHA-1 compression over 4 blocks x 10 passes",
)
