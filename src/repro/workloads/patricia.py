"""Patricia trie (MiBench `patricia`).

Insert and look up 32-bit keys (IP-address-like) in a PATRICIA trie.
Nodes live in parallel arrays (key / bit index / left / right) — the
pointer-chasing, bit-testing loops give the irregular control flow the
MiBench benchmark is known for; the paper reports strong cache
sensitivity for it (1.49x at 16 slots to 2.37x at 256 with speculation).
"""

from repro.workloads import Workload

_SOURCE = r"""
unsigned node_key[512];
int node_bit[512];
int node_left[512];
int node_right[512];
int node_count;

int bit_set(unsigned key, int b) {
    return (key >> b) & 1;
}

int search(unsigned key) {
    int p = 0;
    int next = node_left[0];
    // walk down until a bit index does not decrease
    while (node_bit[next] < node_bit[p]) {
        p = next;
        if (bit_set(key, node_bit[next])) {
            next = node_right[next];
        } else {
            next = node_left[next];
        }
    }
    return next;
}

void insert(unsigned key) {
    int t;
    int p;
    int x;
    int b;
    int n;
    t = search(key);
    if (node_key[t] == key) { return; }
    // find the first differing bit
    b = 31;
    while (b >= 0 && bit_set(key, b) == bit_set(node_key[t], b)) {
        b--;
    }
    if (b < 0) { return; }
    // walk again, stopping where the new bit index belongs
    p = 0;
    x = node_left[0];
    while (node_bit[x] < node_bit[p] && node_bit[x] > b) {
        p = x;
        if (bit_set(key, node_bit[x])) {
            x = node_right[x];
        } else {
            x = node_left[x];
        }
    }
    n = node_count;
    node_count++;
    node_key[n] = key;
    node_bit[n] = b;
    if (bit_set(key, b)) {
        node_left[n] = x;
        node_right[n] = n;
    } else {
        node_left[n] = n;
        node_right[n] = x;
    }
    if (x == node_left[p]) {
        node_left[p] = n;
    } else {
        node_right[p] = n;
    }
}

int main() {
    int i;
    int n;
    int hits = 0;
    unsigned seed = 0x1b0b5;
    unsigned probe;
    unsigned key;
    unsigned check = 0;
    // header node: bit index 32 (larger than any real bit), points to self
    node_key[0] = 0;
    node_bit[0] = 32;
    node_left[0] = 0;
    node_right[0] = 0;
    node_count = 1;
    for (i = 0; i < 300; i++) {
        seed = seed * 1103515245 + 12345;
        key = (seed >> 8) & 0xffffff;
        insert(key | 0x0a000000);
    }
    seed = 0x1b0b5;
    probe = 0x77777;
    for (i = 0; i < 500; i++) {
        if (i & 1) {
            seed = seed * 1103515245 + 12345;   // replay inserted keys
            key = (seed >> 8) & 0xffffff;
        } else {
            probe = probe * 1664525 + 1013904223; // random probes
            key = (probe >> 8) & 0xffffff;
        }
        n = search(key | 0x0a000000);
        if (node_key[n] == (key | 0x0a000000)) {
            hits++;
        }
        check = check * 31 + node_bit[n];
    }
    print_str("patricia ");
    print_int(node_count);
    print_char(' ');
    print_int(hits);
    print_char(' ');
    print_int(check & 0x7fffffff);
    print_char('\n');
    return 0;
}
"""

PATRICIA = Workload(
    name="patricia",
    paper_name="Patricia",
    category="mid",
    source=_SOURCE,
    description="PATRICIA trie: 300 inserts, 500 lookups",
)
"""Note: the trie uses the classic single-header-node formulation with
back edges; lookups terminate because bit indices strictly decrease on
the way down."""
