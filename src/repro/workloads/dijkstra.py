"""Dijkstra shortest paths (MiBench `dijkstra`).

Adjacency-matrix single-source shortest paths with a linear-scan
priority selection, run from several sources — the structure of the
MiBench network benchmark.  The relax/scan loops are short blocks with
data-dependent branches, putting Dijkstra in the control-flow half of
Table 2 (speedups around 1.6-2.2x).
"""

from repro.workloads import Workload

_SOURCE = r"""
int adj[576];
int dist[24];
int visited[24];

void build_graph() {
    int i;
    int j;
    unsigned seed = 0xd1357;
    int w;
    for (i = 0; i < 24; i++) {
        for (j = 0; j < 24; j++) {
            seed = seed * 1103515245 + 12345;
            w = (seed >> 16) & 0x3f;
            if (i == j) {
                w = 0;
            } else {
                if (w < 8) { w = 9999; }  // no edge
            }
            adj[i * 24 + j] = w;
        }
    }
}

int shortest(int src, int dst) {
    int i;
    int step;
    int best;
    int node;
    int alt;
    for (i = 0; i < 24; i++) {
        dist[i] = 9999;
        visited[i] = 0;
    }
    dist[src] = 0;
    for (step = 0; step < 24; step++) {
        best = 10000;
        node = -1;
        for (i = 0; i < 24; i++) {
            if (!visited[i] && dist[i] < best) {
                best = dist[i];
                node = i;
            }
        }
        if (node < 0) { break; }
        visited[node] = 1;
        for (i = 0; i < 24; i++) {
            alt = dist[node] + adj[node * 24 + i];
            if (alt < dist[i]) {
                dist[i] = alt;
            }
        }
    }
    return dist[dst];
}

int main() {
    int s;
    int d;
    unsigned check = 0;
    build_graph();
    for (s = 0; s < 4; s++) {
        for (d = 0; d < 24; d = d + 6) {
            check = check * 31 + shortest(s, d);
        }
    }
    print_str("dijkstra ");
    print_int(check & 0x7fffffff);
    print_char('\n');
    return 0;
}
"""

DIJKSTRA = Workload(
    name="dijkstra",
    paper_name="Dijkstra",
    category="control",
    source=_SOURCE,
    description="24-node all-to-some shortest paths, linear-scan Dijkstra",
)
