"""JPEG-style encode/decode (MiBench `cjpeg`/`djpeg`).

The encoder runs the real JPEG block pipeline on 16 8x8 tiles of a
synthetic image: level shift, separable integer DCT (fixed-point cosine
tables), reciprocal-multiply quantisation, zigzag reordering, and a
variable-length coding stage (magnitude categories + bit packing).  The
decoder inverts it: entropy-free dequantisation, IDCT, and clamping.
Like MiBench's JPEG, the work is spread over many moderately-sized basic
blocks with no single dominant kernel — Figure 3a's motivating example —
which is why the paper's JPEG rows respond to both speculation and extra
cache slots.
"""

from __future__ import annotations

import math
from typing import List

from repro.workloads import Workload


def _cos_table() -> List[int]:
    """C[u*8+x] = 0.5 * c(u) * cos((2x+1) u pi / 16), Q12 fixed point."""
    out = []
    for u in range(8):
        cu = (1.0 / math.sqrt(2.0)) if u == 0 else 1.0
        for x in range(8):
            value = 0.5 * cu * math.cos((2 * x + 1) * u * math.pi / 16.0)
            out.append(int(round(value * 4096)))
    return out


_COS = _cos_table()
#: transpose with the same normalisation — the inverse transform kernel.
_COS_T = [_COS[u * 8 + x] for x in range(8) for u in range(8)]

_QUANT = [
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
]
_RECIP = [int(round(65536.0 / q)) for q in _QUANT]

_ZIGZAG = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
]


def _table(values) -> str:
    return ", ".join(str(v) for v in values)


_COMMON = f"""
int cosf[64] = {{{_table(_COS)}}};
int cosi[64] = {{{_table(_COS_T)}}};
int quant[64] = {{{_table(_QUANT)}}};
int recip[64] = {{{_table(_RECIP)}}};
int zigzag[64] = {{{_table(_ZIGZAG)}}};
unsigned char image[1024];
int blk[64];
int tmp[64];
int coef[64];
int zz[64];
int pix[64];

void init_image() {{
    int i;
    unsigned seed = 0x1ace5;
    int v = 128;
    for (i = 0; i < 1024; i++) {{
        seed = seed * 1103515245 + 12345;
        v = v + (((seed >> 16) & 0x3f) - 32);
        if (v < 0) {{ v = 0; }}
        if (v > 255) {{ v = 255; }}
        image[i] = v;
    }}
}}

void load_block(int bx, int by) {{
    int r;
    int c;
    for (r = 0; r < 8; r++) {{
        for (c = 0; c < 8; c++) {{
            blk[(r << 3) + c] = image[((by + r) << 5) + bx + c] - 128;
        }}
    }}
}}

void fdct() {{
    int u;
    int x;
    int r;
    int sum;
    // rows
    for (r = 0; r < 8; r++) {{
        for (u = 0; u < 8; u++) {{
            sum = 0;
            for (x = 0; x < 8; x++) {{
                sum = sum + blk[(r << 3) + x] * cosf[(u << 3) + x];
            }}
            tmp[(r << 3) + u] = sum >> 9;
        }}
    }}
    // columns
    for (r = 0; r < 8; r++) {{
        for (u = 0; u < 8; u++) {{
            sum = 0;
            for (x = 0; x < 8; x++) {{
                sum = sum + tmp[(x << 3) + r] * cosf[(u << 3) + x];
            }}
            coef[(u << 3) + r] = sum >> 15;
        }}
    }}
}}

void idct() {{
    int u;
    int x;
    int r;
    int sum;
    for (r = 0; r < 8; r++) {{
        for (x = 0; x < 8; x++) {{
            sum = 0;
            for (u = 0; u < 8; u++) {{
                sum = sum + coef[(u << 3) + r] * cosi[(x << 3) + u];
            }}
            tmp[(x << 3) + r] = sum >> 9;
        }}
    }}
    for (r = 0; r < 8; r++) {{
        for (x = 0; x < 8; x++) {{
            sum = 0;
            for (u = 0; u < 8; u++) {{
                sum = sum + tmp[(r << 3) + u] * cosi[(x << 3) + u];
            }}
            sum = (sum >> 15) + 128;
            if (sum < 0) {{ sum = 0; }}
            if (sum > 255) {{ sum = 255; }}
            pix[(r << 3) + x] = sum;
        }}
    }}
}}

void quantize() {{
    int i;
    int v;
    for (i = 0; i < 64; i++) {{
        v = coef[i];
        if (v < 0) {{
            coef[i] = -((-v * recip[i]) >> 16);
        }} else {{
            coef[i] = (v * recip[i]) >> 16;
        }}
    }}
}}

void dequantize() {{
    int i;
    for (i = 0; i < 64; i++) {{
        coef[i] = coef[i] * quant[i];
    }}
}}

int magnitude_category(int v) {{
    int n = 0;
    if (v < 0) {{ v = -v; }}
    while (v != 0) {{
        v = v >> 1;
        n++;
    }}
    return n;
}}
"""

_ENC_MAIN = r"""
unsigned bits;
int nbits;
unsigned packed_check;

void emit_bits(int value, int count) {
    bits = (bits << count) | (value & ((1 << count) - 1));
    nbits = nbits + count;
    while (nbits >= 8) {
        nbits = nbits - 8;
        packed_check = packed_check * 31 + ((bits >> nbits) & 0xff);
    }
}

int encode_block() {
    int i;
    int run = 0;
    int v;
    int cat;
    for (i = 0; i < 64; i++) {
        zz[i] = coef[zigzag[i]];
    }
    cat = magnitude_category(zz[0]);
    emit_bits(cat, 4);
    emit_bits(zz[0], cat + 1);
    for (i = 1; i < 64; i++) {
        v = zz[i];
        if (v == 0) {
            run++;
        } else {
            while (run > 15) {
                emit_bits(0xf0, 8);
                run = run - 16;
            }
            cat = magnitude_category(v);
            emit_bits((run << 4) | cat, 8);
            emit_bits(v, cat + 1);
            run = 0;
        }
    }
    emit_bits(0, 4);
    return 0;
}

int main() {
    int bx;
    int by;
    int pass;
    bits = 0;
    nbits = 0;
    packed_check = 0;
    init_image();
    for (pass = 0; pass < 1; pass++) {
        for (by = 0; by < 24; by = by + 8) {
            for (bx = 0; bx < 32; bx = bx + 8) {
                load_block(bx, by);
                fdct();
                quantize();
                encode_block();
            }
        }
    }
    print_str("jpeg_e ");
    print_int(packed_check & 0x7fffffff);
    print_char('\n');
    return 0;
}
"""

_DEC_MAIN = r"""
int main() {
    int bx;
    int by;
    int pass;
    int i;
    unsigned check = 0;
    init_image();
    for (pass = 0; pass < 1; pass++) {
        for (by = 0; by < 16; by = by + 8) {
            for (bx = 0; bx < 32; bx = bx + 8) {
                load_block(bx, by);
                fdct();
                quantize();
                // decoder path
                dequantize();
                idct();
                for (i = 0; i < 64; i++) {
                    check = check * 31 + pix[i];
                }
            }
        }
    }
    print_str("jpeg_d ");
    print_int(check & 0x7fffffff);
    print_char('\n');
    return 0;
}
"""

JPEG_E = Workload(
    name="jpeg_e",
    paper_name="JPEG E.",
    category="dataflow",
    source=_COMMON + _ENC_MAIN,
    description="8x8 DCT + quantisation + VLC over 12 tiles of a 32x32 image",
)

JPEG_D = Workload(
    name="jpeg_d",
    paper_name="JPEG D.",
    category="mid",
    source=_COMMON + _DEC_MAIN,
    description="dequantisation + IDCT + clamping over a 32x32 image",
)
