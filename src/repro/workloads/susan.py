"""SUSAN image kernels (MiBench `susan` -s / -c / -e).

All three variants work on a synthetic 32x32 greyscale image and use the
SUSAN brightness-similarity lookup table.  Smoothing is the dataflow
variant (weighted window sums); corners and edges compute the USAN area
per pixel and then run threshold/centre-of-gravity decisions, giving the
mixed control behaviour the paper highlights ("algorithms which have no
distinct kernels, such as Susan Corners").
"""

from __future__ import annotations

import math

from repro.workloads import Workload

#: SUSAN similarity LUT: c(d) = 100 * exp(-(d/t)^6) with t=27, d in 0..255.
_LUT = [int(round(100.0 * math.exp(-((d / 27.0) ** 6)))) for d in range(256)]


def _table(values) -> str:
    return ", ".join(str(v) for v in values)


_COMMON = f"""
int lut[256] = {{{_table(_LUT)}}};
unsigned char image[1024];
unsigned char out[1024];
int usan[1024];

void init_image() {{
    int x;
    int y;
    unsigned seed = 0x5a5a11;
    int v;
    for (y = 0; y < 32; y++) {{
        for (x = 0; x < 32; x++) {{
            // two flat regions with an edge, plus noise: gives SUSAN
            // something real to find
            if (x + y < 32) {{ v = 60; }} else {{ v = 180; }}
            if (x > 20 && y > 20) {{ v = 240; }}
            seed = seed * 1103515245 + 12345;
            v = v + (((seed >> 16) & 15) - 8);
            if (v < 0) {{ v = 0; }}
            if (v > 255) {{ v = 255; }}
            image[(y << 5) + x] = v;
        }}
    }}
}}

int absdiff(int a, int b) {{
    if (a > b) {{ return a - b; }}
    return b - a;
}}
"""

_SMOOTH_MAIN = r"""
int main() {
    int x;
    int y;
    int dx;
    int dy;
    int pass;
    int center;
    int weight;
    int total;
    int wsum;
    int p;
    unsigned check = 0;
    init_image();
    for (pass = 0; pass < 1; pass++) {
        for (y = 2; y < 30; y++) {
            for (x = 2; x < 30; x++) {
                center = image[(y << 5) + x];
                total = 0;
                wsum = 0;
                for (dy = -2; dy <= 2; dy++) {
                    for (dx = -2; dx <= 2; dx++) {
                        p = image[((y + dy) << 5) + x + dx];
                        weight = p - center;
                        if (weight < 0) { weight = -weight; }
                        weight = lut[weight];
                        total = total + p * weight;
                        wsum = wsum + weight;
                    }
                }
                if (wsum == 0) { wsum = 1; }
                out[(y << 5) + x] = total / wsum;
            }
        }
        for (y = 2; y < 30; y++) {
            for (x = 2; x < 30; x++) {
                image[(y << 5) + x] = out[(y << 5) + x];
            }
        }
    }
    for (p = 0; p < 1024; p++) {
        check = check * 31 + image[p];
    }
    print_str("susan_s ");
    print_int(check & 0x7fffffff);
    print_char('\n');
    return 0;
}
"""

_USAN_HELPERS = r"""
void compute_usan() {
    int x;
    int y;
    int dx;
    int dy;
    int center;
    int n;
    int d;
    for (y = 3; y < 29; y++) {
        for (x = 3; x < 29; x++) {
            center = image[(y << 5) + x];
            n = 0;
            for (dy = -3; dy <= 3; dy++) {
                for (dx = -3; dx <= 3; dx++) {
                    // approximate circular mask of radius 3.4
                    if (dx * dx + dy * dy <= 11) {
                        d = image[((y + dy) << 5) + x + dx] - center;
                        if (d < 0) { d = -d; }
                        n = n + lut[d];
                    }
                }
            }
            usan[(y << 5) + x] = n;
        }
    }
}
"""

_CORNERS_MAIN = r"""
int main() {
    int x;
    int y;
    int g;
    int n;
    int corners = 0;
    int pass;
    unsigned check = 0;
    init_image();
    for (pass = 0; pass < 1; pass++) {
        compute_usan();
        g = (37 * 100) / 2;
        for (y = 4; y < 28; y++) {
            for (x = 4; x < 28; x++) {
                n = usan[(y << 5) + x];
                if (n < g) {
                    // local minimum test over the 3x3 neighbourhood
                    if (n <= usan[((y - 1) << 5) + x]
                            && n <= usan[((y + 1) << 5) + x]
                            && n < usan[(y << 5) + x - 1]
                            && n < usan[(y << 5) + x + 1]) {
                        corners++;
                        check = check * 31 + ((y << 5) + x);
                    }
                }
            }
        }
    }
    print_str("susan_c ");
    print_int(corners);
    print_char(' ');
    print_int(check & 0x7fffffff);
    print_char('\n');
    return 0;
}
"""

_EDGES_MAIN = r"""
int main() {
    int x;
    int y;
    int g;
    int n;
    int edges = 0;
    int pass;
    unsigned check = 0;
    init_image();
    for (pass = 0; pass < 1; pass++) {
        compute_usan();
        g = (37 * 100 * 3) / 4;
        for (y = 4; y < 28; y++) {
            for (x = 4; x < 28; x++) {
                n = usan[(y << 5) + x];
                if (n < g) {
                    edges++;
                    check = check * 31 + (g - n);
                }
            }
        }
    }
    print_str("susan_e ");
    print_int(edges);
    print_char(' ');
    print_int(check & 0x7fffffff);
    print_char('\n');
    return 0;
}
"""

SUSAN_SMOOTHING = Workload(
    name="susan_s",
    paper_name="Susan Smothing",
    category="dataflow",
    source=_COMMON + _SMOOTH_MAIN,
    description="SUSAN similarity-weighted smoothing, 5x5 window",
)

SUSAN_CORNERS = Workload(
    name="susan_c",
    paper_name="Susan Corners",
    category="mid",
    source=_COMMON + _USAN_HELPERS + _CORNERS_MAIN,
    description="USAN corner detection with local-minimum test",
)

SUSAN_EDGES = Workload(
    name="susan_e",
    paper_name="Susan Edges",
    category="mid",
    source=_COMMON + _USAN_HELPERS + _EDGES_MAIN,
    description="USAN edge response thresholding",
)
