"""The 18 MiBench-analog workloads of Table 2.

MiBench binaries cannot be compiled here (no MIPS gcc, no network), so
every benchmark is re-implemented in mini-C with the same algorithmic
structure as the MiBench program it stands in for: the same kind of
kernels, table usage, branch behaviour and data/control balance, on
reduced inputs sized for pure-Python simulation (see DESIGN.md).

Each workload carries the paper's row name and the paper's
dataflow/control ordering from Table 2.  :func:`load_workload` compiles
and caches the program; :func:`run_workload` additionally executes it and
caches the basic-block trace used by the benchmark harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.asm.program import Program
from repro.minic import compile_to_program
from repro.sim import RunResult, run_program


@dataclass(frozen=True)
class Workload:
    """One benchmark: mini-C source plus metadata."""

    name: str
    paper_name: str
    #: 'dataflow', 'mid' or 'control' — the paper orders Table 2 from the
    #: most dataflow-oriented (top) to the most control-oriented (bottom).
    category: str
    source: str
    description: str = ""


def _collect() -> List[Workload]:
    from repro.workloads import (
        adpcm,
        bitcount,
        crc,
        crypto,
        dijkstra,
        gsm,
        jpeg,
        patricia,
        quicksort,
        sha,
        stringsearch,
        susan,
    )

    # Table 2's order: most dataflow at the top, most control at the bottom.
    return [
        crypto.RIJNDAEL_E,
        crypto.RIJNDAEL_D,
        gsm.GSM_E,
        jpeg.JPEG_E,
        sha.SHA,
        susan.SUSAN_SMOOTHING,
        crc.CRC,
        jpeg.JPEG_D,
        patricia.PATRICIA,
        susan.SUSAN_CORNERS,
        susan.SUSAN_EDGES,
        dijkstra.DIJKSTRA,
        gsm.GSM_D,
        bitcount.BITCOUNT,
        stringsearch.STRINGSEARCH,
        quicksort.QUICKSORT,
        adpcm.RAWAUDIO_E,
        adpcm.RAWAUDIO_D,
    ]


_WORKLOADS: Optional[List[Workload]] = None
_PROGRAMS: Dict[str, Program] = {}
_RUNS: Dict[str, RunResult] = {}


def all_workloads() -> List[Workload]:
    """All 18 workloads in Table 2 order."""
    global _WORKLOADS
    if _WORKLOADS is None:
        _WORKLOADS = _collect()
    return _WORKLOADS


def workload_names() -> List[str]:
    return [w.name for w in all_workloads()]


def get_workload(name: str) -> Workload:
    for workload in all_workloads():
        if workload.name == name:
            return workload
    raise KeyError(f"unknown workload {name!r}")


def load_workload(name: str) -> Program:
    """Compile (with caching) one workload to a loadable program."""
    program = _PROGRAMS.get(name)
    if program is None:
        workload = get_workload(name)
        program = compile_to_program(workload.source, source_name=name)
        _PROGRAMS[name] = program
    return program


def run_workload(name: str, collect_trace: bool = True,
                 fast: bool = False) -> RunResult:
    """Execute (with caching) one workload on the plain MIPS core.

    The cached result carries the basic-block trace every benchmark
    harness replays; runs are cached because tracing a workload is the
    expensive step of the evaluation.  ``fast`` routes execution through
    the block-compiled engine (:mod:`repro.sim.fastpath`), which yields a
    bit-identical result — so the cache is shared between both modes.
    """
    cached = _RUNS.get(name)
    if cached is not None:
        return cached
    result = run_program(load_workload(name), collect_trace=collect_trace,
                         fast=fast)
    if result.exit_code != 0:
        raise RuntimeError(
            f"workload {name} exited with {result.exit_code}")
    _RUNS[name] = result
    return result


def _run_worker(args: Tuple[str, bool]) -> Tuple[str, RunResult]:
    """Process-pool entry point: trace one workload in a worker."""
    name, fast = args
    return name, run_workload(name, fast=fast)


def collect_runs(names: Optional[List[str]] = None, jobs: int = 1,
                 fast: bool = False) -> Dict[str, RunResult]:
    """Trace many workloads, optionally fanned across processes.

    With ``jobs > 1`` the uncached workloads are compiled and traced in a
    :class:`~concurrent.futures.ProcessPoolExecutor`; results come back
    in deterministic (requested) order and seed the in-process run cache
    so later calls are free.  Traces are deterministic, so the parallel
    path returns exactly what the serial path would.
    """
    names = list(names) if names is not None else workload_names()
    pending = [n for n in names if n not in _RUNS]
    if jobs > 1 and len(pending) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
                max_workers=min(jobs, len(pending))) as pool:
            for name, result in pool.map(
                    _run_worker, [(n, fast) for n in pending]):
                _RUNS[name] = result
    else:
        for name in pending:
            run_workload(name, fast=fast)
    return {name: _RUNS[name] for name in names}
