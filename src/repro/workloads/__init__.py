"""The benchmark workload registry.

Built in are the 18 MiBench-analog workloads of Table 2.  MiBench
binaries cannot be compiled here (no MIPS gcc, no network), so every
benchmark is re-implemented in mini-C with the same algorithmic
structure as the MiBench program it stands in for: the same kind of
kernels, table usage, branch behaviour and data/control balance, on
reduced inputs sized for pure-Python simulation (see DESIGN.md).

The registry is *open*: generated kernels — most importantly the
synthetic corpus of :mod:`repro.corpus` — register through
:func:`register_workload` and become indistinguishable from the
built-ins: ``suite``, ``sweep``, ``dse``, ``serve``, ``fleet`` and
``mpsoc`` all consume them through the same :func:`get_workload` /
:func:`run_workload` path.  Worker *processes* (sweep ``--jobs`` pools,
serve batch workers, fleet worker subprocesses) pick registered corpora
up through the ``REPRO_CORPUS`` environment variable — a
``os.pathsep``-separated list of corpus manifest paths loaded lazily on
first registry access — so a parent that registers a corpus and then
fans out gets byte-identical results from every process.

Each workload carries the paper's row name and the paper's
dataflow/control ordering from Table 2.  :func:`load_workload` compiles
(mini-C) or assembles (generated kernels) and caches the program;
:func:`run_workload` additionally executes it and caches the
basic-block trace used by the benchmark harnesses.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.asm.program import Program
from repro.minic import compile_to_program
from repro.sim import RunResult, run_program

#: environment variable naming corpus manifests to auto-register
#: (``os.pathsep``-separated paths); how worker processes inherit the
#: parent's registered corpora.
CORPUS_ENV = "REPRO_CORPUS"


@dataclass(frozen=True)
class Workload:
    """One benchmark: source plus metadata.

    ``kind`` selects the toolchain: ``"minic"`` sources compile through
    :func:`repro.minic.compile_to_program`, ``"asm"`` sources assemble
    through :func:`repro.asm.assemble` (the corpus generator emits
    assembly directly).
    """

    name: str
    paper_name: str
    #: 'dataflow', 'mid' or 'control' — the paper orders Table 2 from the
    #: most dataflow-oriented (top) to the most control-oriented (bottom).
    category: str
    source: str
    description: str = ""
    kind: str = "minic"


def _collect() -> List[Workload]:
    from repro.workloads import (
        adpcm,
        bitcount,
        crc,
        crypto,
        dijkstra,
        gsm,
        jpeg,
        patricia,
        quicksort,
        sha,
        stringsearch,
        susan,
    )

    # Table 2's order: most dataflow at the top, most control at the bottom.
    return [
        crypto.RIJNDAEL_E,
        crypto.RIJNDAEL_D,
        gsm.GSM_E,
        jpeg.JPEG_E,
        sha.SHA,
        susan.SUSAN_SMOOTHING,
        crc.CRC,
        jpeg.JPEG_D,
        patricia.PATRICIA,
        susan.SUSAN_CORNERS,
        susan.SUSAN_EDGES,
        dijkstra.DIJKSTRA,
        gsm.GSM_D,
        bitcount.BITCOUNT,
        stringsearch.STRINGSEARCH,
        quicksort.QUICKSORT,
        adpcm.RAWAUDIO_E,
        adpcm.RAWAUDIO_D,
    ]


_WORKLOADS: Optional[List[Workload]] = None
#: registered (non-built-in) workloads, in registration order.
_REGISTERED: Dict[str, Workload] = {}
_PROGRAMS: Dict[str, Program] = {}
_RUNS: Dict[str, RunResult] = {}
#: the REPRO_CORPUS value already loaded (None = not yet examined).
_ENV_CORPUS_LOADED: Optional[str] = None


def builtin_workloads() -> List[Workload]:
    """The 18 Table 2 workloads, without any registered extras."""
    global _WORKLOADS
    if _WORKLOADS is None:
        _WORKLOADS = _collect()
    return _WORKLOADS


def _load_env_corpus() -> None:
    """Register every manifest named by ``REPRO_CORPUS``, once.

    Re-examined whenever the variable's value changes (the CLI sets it
    before fanning out so subprocesses inherit the same corpora).
    """
    global _ENV_CORPUS_LOADED
    value = os.environ.get(CORPUS_ENV, "")
    if value == (_ENV_CORPUS_LOADED or ""):
        return
    _ENV_CORPUS_LOADED = value
    if not value:
        return
    from repro.corpus import load_manifest, register_corpus

    for path in value.split(os.pathsep):
        if path.strip():
            register_corpus(load_manifest(path.strip()))


def all_workloads() -> List[Workload]:
    """All registered workloads: the 18 of Table 2, then extras in
    registration order."""
    _load_env_corpus()
    return builtin_workloads() + list(_REGISTERED.values())


def workload_names() -> List[str]:
    return [w.name for w in all_workloads()]


def register_workload(workload: Workload) -> Workload:
    """Add one workload to the registry.

    Re-registering the same name with identical (kind, source) is a
    no-op — corpora are loaded idempotently from several entry points —
    but a name collision with *different* content raises, because every
    downstream cache (programs, runs, artifacts, fleet shards) keys on
    the name.
    """
    existing = _find(workload.name)
    if existing is not None:
        if (existing.kind, existing.source) == (workload.kind,
                                                workload.source):
            return existing
        raise ValueError(
            f"workload name {workload.name!r} is already registered "
            f"with different content")
    _REGISTERED[workload.name] = workload
    return workload


def unregister_generated() -> None:
    """Drop every registered (non-built-in) workload and its caches.

    Test isolation helper: the built-ins and their cached runs are
    untouched.
    """
    global _ENV_CORPUS_LOADED
    for name in list(_REGISTERED):
        _PROGRAMS.pop(name, None)
        _RUNS.pop(name, None)
    _REGISTERED.clear()
    _ENV_CORPUS_LOADED = None if os.environ.get(CORPUS_ENV) else ""


def _find(name: str) -> Optional[Workload]:
    _load_env_corpus()
    registered = _REGISTERED.get(name)
    if registered is not None:
        return registered
    for workload in builtin_workloads():
        if workload.name == name:
            return workload
    return None


def get_workload(name: str) -> Workload:
    """The workload registered under ``name``.

    Raises :class:`ValueError` naming the valid workloads on an unknown
    name (mirroring the ``paper_system`` helpful-error precedent).
    """
    workload = _find(name)
    if workload is None:
        valid = ", ".join(workload_names())
        raise ValueError(
            f"unknown workload {name!r}: valid workload names are "
            f"{valid}")
    return workload


def load_workload(name: str) -> Program:
    """Compile or assemble (with caching) one workload."""
    program = _PROGRAMS.get(name)
    if program is None:
        workload = get_workload(name)
        if workload.kind == "asm":
            from repro.asm import assemble

            program = assemble(workload.source)
        else:
            program = compile_to_program(workload.source, source_name=name)
        _PROGRAMS[name] = program
    return program


def run_workload(name: str, collect_trace: bool = True,
                 fast: bool = False) -> RunResult:
    """Execute (with caching) one workload on the plain MIPS core.

    The cached result carries the basic-block trace every benchmark
    harness replays; runs are cached because tracing a workload is the
    expensive step of the evaluation.  ``fast`` routes execution through
    the block-compiled engine (:mod:`repro.sim.fastpath`), which yields a
    bit-identical result — so the cache is shared between both modes.
    """
    cached = _RUNS.get(name)
    if cached is not None:
        return cached
    result = run_program(load_workload(name), collect_trace=collect_trace,
                         fast=fast)
    if result.exit_code != 0:
        raise RuntimeError(
            f"workload {name} exited with {result.exit_code}")
    _RUNS[name] = result
    return result


def _run_worker(args: Tuple[str, bool]) -> Tuple[str, RunResult]:
    """Process-pool entry point: trace one workload in a worker."""
    name, fast = args
    return name, run_workload(name, fast=fast)


def collect_runs(names: Optional[List[str]] = None, jobs: int = 1,
                 fast: bool = False) -> Dict[str, RunResult]:
    """Trace many workloads, optionally fanned across processes.

    With ``jobs > 1`` the uncached workloads are compiled and traced in a
    :class:`~concurrent.futures.ProcessPoolExecutor`; results come back
    in deterministic (requested) order and seed the in-process run cache
    so later calls are free.  Traces are deterministic, so the parallel
    path returns exactly what the serial path would.
    """
    names = list(names) if names is not None else workload_names()
    pending = [n for n in names if n not in _RUNS]
    if jobs > 1 and len(pending) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
                max_workers=min(jobs, len(pending))) as pool:
            for name, result in pool.map(
                    _run_worker, [(n, fast) for n in pending]):
                _RUNS[name] = result
    else:
        for name in pending:
            run_workload(name, fast=fast)
    return {name: _RUNS[name] for name in names}
