"""IMA ADPCM — MiBench `rawaudio` (adpcm) encode/decode.

The per-sample loop is dominated by short if/else ladders (sign handling,
quantiser level selection, index clamping), making RawAudio the most
control-flow-oriented pair in Figure 3b (~4-5 instructions per branch).
The paper uses it to show DIM still gains on branch-dense code
(1.6-2.0x) where classic kernel-mapping reconfigurable systems cannot.
"""

from repro.workloads import Workload

#: the standard IMA ADPCM step-size table (89 entries).
_STEP_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
    6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
]

_INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]


def _table(values) -> str:
    return ", ".join(str(v) for v in values)


_COMMON = f"""
int step_tab[89] = {{{_table(_STEP_TABLE)}}};
int index_tab[16] = {{{_table(_INDEX_TABLE)}}};
int pcm[1024];
char code[1024];
int out[1024];

void init_samples() {{
    int i;
    unsigned seed = 0xa0d10;
    int v = 0;
    for (i = 0; i < 1024; i++) {{
        seed = seed * 1103515245 + 12345;
        v = v + (((seed >> 16) & 0x3ff) - 512);
        if (v > 30000) {{ v = 30000; }}
        if (v < -30000) {{ v = -30000; }}
        pcm[i] = v;
    }}
}}

void adpcm_encode(int n) {{
    int i;
    int valpred = 0;
    int index = 0;
    int step;
    int diff;
    int sign;
    int delta;
    int vpdiff;
    step = step_tab[0];
    for (i = 0; i < n; i++) {{
        diff = pcm[i] - valpred;
        if (diff < 0) {{ sign = 8; diff = -diff; }} else {{ sign = 0; }}
        delta = 0;
        vpdiff = step >> 3;
        if (diff >= step) {{
            delta = 4;
            diff = diff - step;
            vpdiff = vpdiff + step;
        }}
        step = step >> 1;
        if (diff >= step) {{
            delta = delta | 2;
            diff = diff - step;
            vpdiff = vpdiff + step;
        }}
        step = step >> 1;
        if (diff >= step) {{
            delta = delta | 1;
            vpdiff = vpdiff + step;
        }}
        if (sign) {{ valpred = valpred - vpdiff; }}
        else {{ valpred = valpred + vpdiff; }}
        if (valpred > 32767) {{ valpred = 32767; }}
        else {{ if (valpred < -32768) {{ valpred = -32768; }} }}
        delta = delta | sign;
        index = index + index_tab[delta];
        if (index < 0) {{ index = 0; }}
        if (index > 88) {{ index = 88; }}
        step = step_tab[index];
        code[i] = delta;
    }}
}}

void adpcm_decode(int n) {{
    int i;
    int valpred = 0;
    int index = 0;
    int step;
    int delta;
    int sign;
    int vpdiff;
    step = step_tab[0];
    for (i = 0; i < n; i++) {{
        delta = code[i];
        index = index + index_tab[delta];
        if (index < 0) {{ index = 0; }}
        if (index > 88) {{ index = 88; }}
        sign = delta & 8;
        delta = delta & 7;
        vpdiff = step >> 3;
        if (delta & 4) {{ vpdiff = vpdiff + step; }}
        if (delta & 2) {{ vpdiff = vpdiff + (step >> 1); }}
        if (delta & 1) {{ vpdiff = vpdiff + (step >> 2); }}
        if (sign) {{ valpred = valpred - vpdiff; }}
        else {{ valpred = valpred + vpdiff; }}
        if (valpred > 32767) {{ valpred = 32767; }}
        else {{ if (valpred < -32768) {{ valpred = -32768; }} }}
        step = step_tab[index];
        out[i] = valpred;
    }}
}}
"""

_ENC_MAIN = """
int main() {
    int pass;
    int i;
    unsigned check = 0;
    init_samples();
    for (pass = 0; pass < 3; pass++) {
        adpcm_encode(1024);
    }
    for (i = 0; i < 1024; i++) {
        check = check * 31 + code[i];
    }
    print_str("rawaudio_e ");
    print_int(check & 0x7fffffff);
    print_char('\\n');
    return 0;
}
"""

_DEC_MAIN = """
int main() {
    int pass;
    int i;
    unsigned check = 0;
    init_samples();
    adpcm_encode(1024);
    for (pass = 0; pass < 3; pass++) {
        adpcm_decode(1024);
    }
    for (i = 0; i < 1024; i++) {
        check = check * 31 + out[i];
    }
    print_str("rawaudio_d ");
    print_int(check & 0x7fffffff);
    print_char('\\n');
    return 0;
}
"""

RAWAUDIO_E = Workload(
    name="rawaudio_e",
    paper_name="RawAudio E.",
    category="control",
    source=_COMMON + _ENC_MAIN,
    description="IMA ADPCM encoding of 1024 samples x 5 passes",
)

RAWAUDIO_D = Workload(
    name="rawaudio_d",
    paper_name="RawAudio D.",
    category="control",
    source=_COMMON + _DEC_MAIN,
    description="IMA ADPCM decoding of 1024 samples x 5 passes",
)
