"""GSM 06.10-style speech codec kernels (MiBench `gsm` toast/untoast).

The encoder runs the characteristic GSM front end per 160-sample frame:
pre-emphasis, a 9-lag autocorrelation (multiply-dominated), a Schur-style
reflection-coefficient recursion with data-dependent divides, coefficient
quantisation (if/else ladders), and a long-term-prediction lag search.
The decoder runs dequantisation and the inverse short-term synthesis
lattice.  The mix of multiply-heavy loops and quantisation branches puts
GSM in the paper's dataflow half with moderate cache sensitivity.
"""

from repro.workloads import Workload

_COMMON = r"""
int frame[160];
int history[160];
int acf[9];
int refl[8];
int lar[8];
int coded[160];
int synth[160];

void make_frame(int which) {
    int i;
    unsigned seed;
    int v = 0;
    seed = 0x6510 + which * 2654435761;
    for (i = 0; i < 160; i++) {
        seed = seed * 1103515245 + 12345;
        v = v + (((seed >> 16) & 0x1ff) - 256);
        if (v > 16000) { v = 16000; }
        if (v < -16000) { v = -16000; }
        frame[i] = v;
    }
}

void preemphasis() {
    int i;
    int prev = 0;
    int cur;
    for (i = 0; i < 160; i++) {
        cur = frame[i];
        frame[i] = cur - ((prev * 28180) >> 15);
        prev = cur;
    }
}

void autocorrelation() {
    int k;
    int i;
    int sum;
    for (k = 0; k < 9; k++) {
        sum = 0;
        for (i = k; i < 160; i++) {
            sum = sum + ((frame[i] >> 3) * (frame[i - k] >> 3));
        }
        acf[k] = sum;
    }
}

void reflection_coeffs() {
    int i;
    int k;
    int num;
    int den;
    int r;
    den = acf[0];
    if (den == 0) { den = 1; }
    for (i = 0; i < 8; i++) {
        num = acf[i + 1];
        r = (num << 12) / den;
        if (r > 4095) { r = 4095; }
        if (r < -4095) { r = -4095; }
        refl[i] = r;
        // dampen the residual energy (Schur-style update, simplified)
        den = den - ((r * r * (den >> 12)) >> 12);
        if (den < 1) { den = 1; }
        for (k = 0; k <= i; k++) {
            acf[k + 1] = acf[k + 1] - ((r * acf[k]) >> 12);
        }
    }
}

void quantize_lar() {
    int i;
    int r;
    for (i = 0; i < 8; i++) {
        r = refl[i];
        if (r < -2867) {
            lar[i] = -(4096 + ((2867 + r) >> 2));
        } else if (r > 2867) {
            lar[i] = 4096 + ((r - 2867) >> 2);
        } else {
            lar[i] = r << 1;
        }
    }
}

int ltp_search() {
    int lag;
    int i;
    int corr;
    int best = 0;
    int best_lag = 40;
    for (lag = 40; lag < 120; lag++) {
        corr = 0;
        for (i = 0; i < 40; i++) {
            corr = corr + ((frame[120 + i] >> 6) * (history[160 + i - lag] >> 6));
        }
        if (corr > best) {
            best = corr;
            best_lag = lag;
        }
    }
    return best_lag;
}

void residual_encode(int lag) {
    int i;
    int pred;
    for (i = 0; i < 160; i++) {
        if (i >= lag) {
            pred = (coded[i - lag] * 3) >> 2;
        } else {
            pred = 0;
        }
        coded[i] = (frame[i] >> 2) - pred;
    }
}

void synthesis_filter() {
    int i;
    int k;
    int s;
    for (i = 0; i < 160; i++) {
        s = coded[i] << 2;
        for (k = 0; k < 8; k++) {
            if (i > k) {
                s = s + ((lar[k] * synth[i - k - 1]) >> 13);
            }
        }
        if (s > 30000) { s = 30000; }
        if (s < -30000) { s = -30000; }
        synth[i] = s;
    }
}

void save_history() {
    int i;
    for (i = 0; i < 160; i++) {
        history[i] = frame[i];
    }
}
"""

_ENC_MAIN = r"""
int main() {
    int f;
    int i;
    int lag;
    unsigned check = 0;
    for (i = 0; i < 160; i++) { history[i] = 0; }
    for (f = 0; f < 3; f++) {
        make_frame(f);
        preemphasis();
        autocorrelation();
        reflection_coeffs();
        quantize_lar();
        lag = ltp_search();
        residual_encode(lag);
        save_history();
        check = check * 31 + lag;
        for (i = 0; i < 8; i++) {
            check = check * 31 + (lar[i] & 0xffff);
        }
        for (i = 0; i < 160; i++) {
            check = check * 31 + (coded[i] & 0xff);
        }
    }
    print_str("gsm_e ");
    print_int(check & 0x7fffffff);
    print_char('\n');
    return 0;
}
"""

_DEC_MAIN = r"""
int main() {
    int f;
    int i;
    int lag;
    unsigned check = 0;
    for (i = 0; i < 160; i++) { history[i] = 0; }
    for (f = 0; f < 4; f++) {
        make_frame(f);
        preemphasis();
        autocorrelation();
        reflection_coeffs();
        quantize_lar();
        residual_encode(47);
        // decode side: rebuild the waveform from the residual
        synthesis_filter();
        save_history();
        for (i = 0; i < 160; i++) {
            check = check * 31 + (synth[i] & 0xffff);
        }
    }
    print_str("gsm_d ");
    print_int(check & 0x7fffffff);
    print_char('\n');
    return 0;
}
"""

GSM_E = Workload(
    name="gsm_e",
    paper_name="GSM E.",
    category="dataflow",
    source=_COMMON + _ENC_MAIN,
    description="GSM-style encoder front end over 3 frames",
)

GSM_D = Workload(
    name="gsm_d",
    paper_name="GSM D.",
    category="control",
    source=_COMMON + _DEC_MAIN,
    description="GSM-style decoder synthesis over 4 frames",
)
