"""String search (MiBench `stringsearch`).

Boyer-Moore-Horspool search of a set of patterns over a synthetic text,
including per-pattern skip-table construction — the same structure as
MiBench's Pratt/Horspool driver.  Irregular, data-dependent inner loops
give the benchmark its strong cache-slot sensitivity in Table 2 (1.38x
at 16 slots up to 2.96x at 256 with speculation).
"""

from repro.workloads import Workload

_SOURCE = r"""
char text[2048];
char pat[16];
int skip[256];
char words[64] = "thequickbrownfoxjumpsoverthelazydogpackmyboxwithfivedozenjugs";

void build_text() {
    int i;
    unsigned seed = 0x7e47;
    for (i = 0; i < 2047; i++) {
        seed = seed * 1103515245 + 12345;
        text[i] = words[(seed >> 16) % 61];
    }
    text[2047] = 0;
}

void set_pattern(int which, int len) {
    int i;
    for (i = 0; i < len; i++) {
        pat[i] = words[(which * 7 + i * 3) % 61];
    }
    pat[len] = 0;
}

int bmh_search(int n, int m) {
    int i;
    int j;
    int pos;
    int found = 0;
    for (i = 0; i < 256; i++) {
        skip[i] = m;
    }
    for (i = 0; i < m - 1; i++) {
        skip[pat[i]] = m - 1 - i;
    }
    pos = 0;
    while (pos <= n - m) {
        j = m - 1;
        while (j >= 0 && text[pos + j] == pat[j]) {
            j--;
        }
        if (j < 0) {
            found++;
            pos = pos + m;
        } else {
            pos = pos + skip[text[pos + m - 1]];
        }
    }
    return found;
}

int main() {
    int p;
    int len;
    unsigned check = 0;
    build_text();
    for (p = 0; p < 24; p++) {
        len = 3 + (p & 3);
        set_pattern(p, len);
        check = check * 31 + bmh_search(2047, len);
    }
    print_str("stringsearch ");
    print_int(check & 0x7fffffff);
    print_char('\n');
    return 0;
}
"""

STRINGSEARCH = Workload(
    name="stringsearch",
    paper_name="Stringsearch",
    category="control",
    source=_SOURCE,
    description="Boyer-Moore-Horspool, 24 patterns over 2 KiB of text",
)
