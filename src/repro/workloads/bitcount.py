"""Bit counting (MiBench `bitcount`).

Five counting strategies applied to a stream of pseudo-random words —
iterated shift-and-add, Kernighan's trick, nibble and byte table lookups,
and a branch-free SWAR reduction — matching the structure of MiBench's
bitcnts driver.  Short loops with data-dependent trip counts make this a
control benchmark; Table 2 shows it almost invariant to every array and
cache parameter (1.76x / 1.83x everywhere).
"""

from repro.workloads import Workload

_SOURCE = r"""
int nibble_tab[16] = {0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4};
char byte_tab[256];

void build_byte_tab() {
    int i;
    for (i = 0; i < 256; i++) {
        byte_tab[i] = nibble_tab[i & 15] + nibble_tab[(i >> 4) & 15];
    }
}

int count_shift(unsigned v) {
    int n = 0;
    while (v != 0) {
        n = n + (v & 1);
        v = v >> 1;
    }
    return n;
}

int count_kernighan(unsigned v) {
    int n = 0;
    while (v != 0) {
        v = v & (v - 1);
        n++;
    }
    return n;
}

int count_nibbles(unsigned v) {
    int n = 0;
    while (v != 0) {
        n = n + nibble_tab[v & 15];
        v = v >> 4;
    }
    return n;
}

int count_bytes(unsigned v) {
    return byte_tab[v & 0xff] + byte_tab[(v >> 8) & 0xff]
         + byte_tab[(v >> 16) & 0xff] + byte_tab[(v >> 24) & 0xff];
}

int count_swar(unsigned v) {
    v = v - ((v >> 1) & 0x55555555);
    v = (v & 0x33333333) + ((v >> 2) & 0x33333333);
    v = (v + (v >> 4)) & 0x0f0f0f0f;
    return (v * 0x01010101) >> 24;
}

int main() {
    int i;
    unsigned seed = 0xb17c047;
    unsigned v;
    int a; int b; int c; int d; int e;
    unsigned total = 0;
    build_byte_tab();
    for (i = 0; i < 700; i++) {
        seed = seed * 1103515245 + 12345;
        v = seed ^ (seed >> 13);
        a = count_shift(v);
        b = count_kernighan(v);
        c = count_nibbles(v);
        d = count_bytes(v);
        e = count_swar(v);
        if (a != b || b != c || c != d || d != e) {
            print_str("bitcount MISMATCH\n");
            return 1;
        }
        total = total + a;
    }
    print_str("bitcount ");
    print_int(total);
    print_char('\n');
    return 0;
}
"""

BITCOUNT = Workload(
    name="bitcount",
    paper_name="Bitcount",
    category="control",
    source=_SOURCE,
    description="five bit-count algorithms over 700 words, cross-checked",
)
