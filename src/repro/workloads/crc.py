"""CRC-32 — the paper's canonical "three hot basic blocks" benchmark.

The table is built at run time (8-step bit loop per entry) and the
checksum loop itself is one tiny basic block executed for every byte —
which is why CRC's speedup in Table 2 is completely insensitive to the
reconfiguration-cache size (1.53x / 1.92x across all columns).
"""

from repro.workloads import Workload

_SOURCE = r"""
unsigned crc_tab[256];
unsigned char data[2048];

void build_tab() {
    int i;
    int j;
    unsigned c;
    for (i = 0; i < 256; i++) {
        c = i;
        for (j = 0; j < 8; j++) {
            if (c & 1) {
                c = (c >> 1) ^ 0xedb88320;
            } else {
                c = c >> 1;
            }
        }
        crc_tab[i] = c;
    }
}

void init_data() {
    int i;
    unsigned seed = 0xc0ffee11;
    for (i = 0; i < 2048; i++) {
        seed = seed * 1103515245 + 12345;
        data[i] = (seed >> 16) & 0xff;
    }
}

unsigned crc_buffer(int len) {
    unsigned c = 0xffffffff;
    int i;
    for (i = 0; i < len; i++) {
        c = crc_tab[(c ^ data[i]) & 0xff] ^ (c >> 8);
    }
    return ~c;
}

int main() {
    int pass;
    unsigned total = 0;
    build_tab();
    init_data();
    for (pass = 0; pass < 6; pass++) {
        total = total ^ crc_buffer(2048 - pass);
    }
    print_str("crc ");
    print_int(total & 0x7fffffff);
    print_char('\n');
    return 0;
}
"""

CRC = Workload(
    name="crc",
    paper_name="CRC",
    category="mid",
    source=_SOURCE,
    description="table-driven CRC-32 over a 2 KiB buffer, 14 passes",
)
