"""Disassembler for debugging and for DIM diagnostics."""

from __future__ import annotations

from typing import List, Optional

from repro.asm.program import Program
from repro.isa.instruction import Instruction, decode
from repro.isa.opcodes import InstrClass


def disassemble_word(word: int, pc: int = 0) -> str:
    """Render one 32-bit word as assembly (branch targets absolute)."""
    instr = decode(word)
    if instr is None:
        return f".word 0x{word:08x}"
    return render(instr, pc)


def render(instr: Instruction, pc: int = 0) -> str:
    """Render an instruction; branches show their absolute target."""
    if instr.info.is_control and instr.klass is not InstrClass.NOP:
        if instr.mnemonic in ("jr", "jalr"):
            return str(instr)
        target = instr.branch_target(pc)
        text = str(instr)
        head = text.rsplit(",", 1)[0] if "," in text else text.split()[0]
        if instr.mnemonic in ("j", "jal"):
            return f"{instr.mnemonic} 0x{target:08x}"
        return f"{head}, 0x{target:08x}"
    return str(instr)


def disassemble_program(program: Program,
                        start: Optional[int] = None,
                        count: Optional[int] = None) -> List[str]:
    """Disassemble ``count`` instructions beginning at ``start``."""
    start = program.text_base if start is None else start
    if count is None:
        count = (program.text_end - start) // 4
    lines = []
    for i in range(count):
        pc = start + 4 * i
        word = program.word_at(pc)
        lines.append(f"{pc:08x}:  {disassemble_word(word, pc)}")
    return lines
