"""Two-pass MIPS I assembler.

Supported syntax (SPIM-flavoured):

- sections ``.text`` / ``.data``, labels ``name:``
- directives ``.word``, ``.half``, ``.byte``, ``.ascii``, ``.asciiz``,
  ``.space``, ``.align``, ``.globl`` (accepted, no-op)
- every real instruction in :mod:`repro.isa.opcodes`
- the usual pseudo-instructions (``li``, ``la``, ``move``, ``b``,
  ``beqz``/``bnez``, ``blt``/``bge``/``bgt``/``ble`` and unsigned forms,
  ``mul``, three-operand ``div``/``divu``, ``rem``/``remu``, ``neg``,
  ``not``, ``seq``/``sne``/``sgt``/``sge``/``sle``)
- ``#`` and ``;`` comments, character literals, hex/decimal immediates,
  ``label+offset`` expressions

Pseudo-instruction expansion sizes are fully determined in pass 1, so the
classic two-pass scheme suffices.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.asm.program import DATA_BASE, Program, TEXT_BASE
from repro.isa.instruction import Instruction, encode
from repro.isa.opcodes import OPCODES, Format, InstrClass
from repro.isa.registers import AT, ZERO, register_number


class AssemblerError(Exception):
    """Raised for any syntactic or semantic assembly error."""

    def __init__(self, message: str, line: Optional[int] = None):
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(prefix + message)
        self.line = line


@dataclass(frozen=True)
class SymRef:
    """A symbol reference to be resolved in pass 2.

    ``mode`` selects the relocation: ``rel16`` (PC-relative branch),
    ``abs26`` (jump target), ``hi16`` / ``lo16`` (la expansion) or
    ``abs16`` (small absolute immediates in data-relative addressing).
    """

    name: str
    addend: int
    mode: str


Operand = Union[int, str, SymRef]


@dataclass
class ProtoInstr:
    """A real instruction whose immediate may still be symbolic."""

    mnemonic: str
    rs: int = 0
    rt: int = 0
    rd: int = 0
    shamt: int = 0
    imm: Union[int, SymRef] = 0
    target: Union[int, SymRef] = 0
    line: int = 0


@dataclass
class _DataItem:
    address: int
    size: int  # bytes per element
    values: List[Union[int, SymRef]] = field(default_factory=list)
    line: int = 0


_STRING_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')
_LABEL_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")

_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, '"': 34, "'": 39}


def _unescape(body: str, line: int) -> bytes:
    out = bytearray()
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            i += 1
            if i >= len(body):
                raise AssemblerError("dangling escape in string", line)
            esc = body[i]
            if esc not in _ESCAPES:
                raise AssemblerError(f"unknown escape \\{esc}", line)
            out.append(_ESCAPES[esc])
        else:
            out.append(ord(ch) & 0xFF)
        i += 1
    return bytes(out)


def _parse_int(token: str, line: int) -> Optional[int]:
    token = token.strip()
    if len(token) >= 3 and token[0] == "'" and token[-1] == "'":
        body = _unescape(token[1:-1], line)
        if len(body) != 1:
            raise AssemblerError(f"bad char literal {token}", line)
        return body[0]
    try:
        return int(token, 0)
    except ValueError:
        return None


class Assembler:
    """Stateful two-pass assembler; use :func:`assemble` for the one-shot API."""

    def __init__(self, text_base: int = TEXT_BASE, data_base: int = DATA_BASE):
        self.text_base = text_base
        self.data_base = data_base
        self.symbols: Dict[str, int] = {}
        self._protos: List[Tuple[int, ProtoInstr]] = []
        self._data_items: List[_DataItem] = []
        self._text_loc = text_base
        self._data_loc = data_base
        self._section = "text"
        #: labels seen but not yet bound — binding is deferred until the
        #: next emitted item so that auto-alignment of .half/.word does
        #: not strand a label on padding bytes.
        self._pending_labels: List[str] = []

    # ------------------------------------------------------------------
    # Pass 1: parse, expand, lay out.
    # ------------------------------------------------------------------
    def feed(self, source: str) -> None:
        for lineno, raw in enumerate(source.splitlines(), start=1):
            self._feed_line(raw, lineno)

    def _feed_line(self, raw: str, lineno: int) -> None:
        line = self._strip_comment(raw).strip()
        while line:
            colon = line.find(":")
            if colon >= 0 and _LABEL_RE.match(line[:colon].strip()):
                self._define_label(line[:colon].strip(), lineno)
                line = line[colon + 1:].strip()
            else:
                break
        if not line:
            return
        if line.startswith("."):
            self._directive(line, lineno)
        else:
            self._instruction(line, lineno)

    @staticmethod
    def _strip_comment(line: str) -> str:
        out = []
        in_str = False
        i = 0
        while i < len(line):
            ch = line[i]
            if ch == '"' and (i == 0 or line[i - 1] != "\\"):
                in_str = not in_str
            if not in_str and ch in "#;":
                break
            out.append(ch)
            i += 1
        return "".join(out)

    def _define_label(self, name: str, line: int) -> None:
        if name in self.symbols or name in self._pending_labels:
            raise AssemblerError(f"duplicate label {name!r}", line)
        self._pending_labels.append(name)

    def _bind_pending_labels(self) -> None:
        if not self._pending_labels:
            return
        loc = self._text_loc if self._section == "text" else self._data_loc
        for name in self._pending_labels:
            self.symbols[name] = loc
        self._pending_labels.clear()

    # -- directives -----------------------------------------------------
    def _directive(self, line: str, lineno: int) -> None:
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        if name == ".text":
            self._bind_pending_labels()
            self._section = "text"
            if rest:
                self._text_loc = self._require_int(rest, lineno)
        elif name == ".data":
            self._bind_pending_labels()
            self._section = "data"
            if rest:
                self._data_loc = self._require_int(rest, lineno)
        elif name == ".globl" or name == ".global" or name == ".set":
            return
        elif name == ".align":
            power = self._require_int(rest, lineno)
            self._align(1 << power)
        elif name == ".space":
            count = self._require_int(rest, lineno)
            self._emit_data(1, [0] * count, lineno)
        elif name in (".word", ".half", ".byte"):
            size = {".word": 4, ".half": 2, ".byte": 1}[name]
            self._align(size)
            values = [self._operand_value(tok, lineno)
                      for tok in self._split_operands(rest)]
            if not values:
                raise AssemblerError(f"{name} needs at least one value",
                                     lineno)
            self._emit_data(size, values, lineno)
        elif name in (".ascii", ".asciiz"):
            match = _STRING_RE.search(rest)
            if not match:
                raise AssemblerError("expected string literal", lineno)
            payload = _unescape(match.group(1), lineno)
            if name == ".asciiz":
                payload += b"\x00"
            self._emit_data(1, list(payload), lineno)
        else:
            raise AssemblerError(f"unknown directive {name}", lineno)

    def _align(self, boundary: int) -> None:
        if self._section == "text":
            pad = (-self._text_loc) % boundary
            self._text_loc += pad
        else:
            pad = (-self._data_loc) % boundary
            if pad:
                # pad without binding pending labels: a label in front of
                # an aligned directive names the aligned item, not the gap
                self._data_items.append(
                    _DataItem(self._data_loc, 1, [0] * pad, 0))
                self._data_loc += pad

    def _emit_data(self, size: int, values: Sequence[Union[int, SymRef]],
                   line: int) -> None:
        if self._section != "data":
            raise AssemblerError("data directive outside .data", line)
        self._bind_pending_labels()
        item = _DataItem(self._data_loc, size, list(values), line)
        self._data_items.append(item)
        self._data_loc += size * len(values)

    def _require_int(self, token: str, line: int) -> int:
        value = _parse_int(token, line)
        if value is None:
            raise AssemblerError(f"expected integer, got {token!r}", line)
        return value

    # -- instructions ----------------------------------------------------
    @staticmethod
    def _split_operands(rest: str) -> List[str]:
        if not rest.strip():
            return []
        return [tok.strip() for tok in rest.split(",")]

    def _operand_value(self, token: str, line: int,
                       mode: str = "abs16") -> Union[int, SymRef]:
        """Parse an immediate operand: literal, symbol, or symbol±literal.

        A numeric branch operand is an *absolute address* (SPIM
        semantics), carried through as an anonymous reference so pass 2
        converts it to a PC-relative offset.
        """
        value = _parse_int(token, line)
        if value is not None:
            if mode == "rel16":
                return SymRef("", value, "rel16")
            return value
        match = re.match(r"^([A-Za-z_.$][A-Za-z0-9_.$]*)\s*([+-]\s*\w+)?$",
                         token)
        if not match:
            raise AssemblerError(f"bad operand {token!r}", line)
        addend = 0
        if match.group(2):
            addend = self._require_int(match.group(2).replace(" ", ""), line)
        return SymRef(match.group(1), addend, mode)

    def _instruction(self, line: str, lineno: int) -> None:
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = self._split_operands(parts[1] if len(parts) > 1 else "")
        if self._section != "text":
            raise AssemblerError("instruction outside .text", lineno)
        self._bind_pending_labels()
        for proto in self._expand(mnemonic, operands, lineno):
            proto.line = lineno
            self._protos.append((self._text_loc, proto))
            self._text_loc += 4

    # The expansion table.  Each entry returns a list of ProtoInstr.
    def _expand(self, m: str, ops: List[str],
                line: int) -> List[ProtoInstr]:  # noqa: C901
        reg = lambda tok: self._reg(tok, line)  # noqa: E731
        imm = lambda tok, mode="abs16": self._operand_value(tok, line, mode)  # noqa: E731

        if m == "nop":
            return [ProtoInstr("sll")]
        if m == "move":
            self._arity(ops, 2, m, line)
            return [ProtoInstr("addu", rd=reg(ops[0]), rs=reg(ops[1]),
                               rt=ZERO)]
        if m == "li":
            self._arity(ops, 2, m, line)
            value = self._require_int(ops[1], line)
            return self._expand_li(reg(ops[0]), value)
        if m == "la":
            self._arity(ops, 2, m, line)
            rt = reg(ops[0])
            ref = imm(ops[1])
            if isinstance(ref, int):
                return self._expand_li(rt, ref)
            hi = SymRef(ref.name, ref.addend, "hi16")
            lo = SymRef(ref.name, ref.addend, "lo16")
            return [ProtoInstr("lui", rt=rt, imm=hi),
                    ProtoInstr("ori", rt=rt, rs=rt, imm=lo)]
        if m == "b":
            self._arity(ops, 1, m, line)
            return [ProtoInstr("beq", rs=ZERO, rt=ZERO,
                               imm=imm(ops[0], "rel16"))]
        if m in ("beqz", "bnez"):
            self._arity(ops, 2, m, line)
            real = "beq" if m == "beqz" else "bne"
            return [ProtoInstr(real, rs=reg(ops[0]), rt=ZERO,
                               imm=imm(ops[1], "rel16"))]
        if m in ("blt", "bge", "bgt", "ble", "bltu", "bgeu", "bgtu", "bleu"):
            self._arity(ops, 3, m, line)
            unsigned = m.endswith("u")
            base = m[:3]
            slt = "sltu" if unsigned else "slt"
            # the second operand may be an immediate (SPIM-style):
            # materialise it in $at first
            prefix: List[ProtoInstr] = []
            value = _parse_int(ops[1], line)
            if value is None:
                b = reg(ops[1])
            elif value == 0:
                b = ZERO
            else:
                prefix = self._expand_li(AT, value)
                b = AT
            a = reg(ops[0])
            if base in ("bgt", "ble"):
                a, b = b, a
            branch = "bne" if base in ("blt", "bgt") else "beq"
            return prefix + [
                ProtoInstr(slt, rd=AT, rs=a, rt=b),
                ProtoInstr(branch, rs=AT, rt=ZERO,
                           imm=imm(ops[2], "rel16"))]
        if m == "mul":
            self._arity(ops, 3, m, line)
            return [ProtoInstr("mult", rs=reg(ops[1]), rt=reg(ops[2])),
                    ProtoInstr("mflo", rd=reg(ops[0]))]
        if m in ("div", "divu") and len(ops) == 3:
            return [ProtoInstr(m, rs=reg(ops[1]), rt=reg(ops[2])),
                    ProtoInstr("mflo", rd=reg(ops[0]))]
        if m in ("rem", "remu"):
            self._arity(ops, 3, m, line)
            real = "div" if m == "rem" else "divu"
            return [ProtoInstr(real, rs=reg(ops[1]), rt=reg(ops[2])),
                    ProtoInstr("mfhi", rd=reg(ops[0]))]
        if m in ("neg", "negu"):
            self._arity(ops, 2, m, line)
            real = "sub" if m == "neg" else "subu"
            return [ProtoInstr(real, rd=reg(ops[0]), rs=ZERO,
                               rt=reg(ops[1]))]
        if m == "not":
            self._arity(ops, 2, m, line)
            return [ProtoInstr("nor", rd=reg(ops[0]), rs=reg(ops[1]),
                               rt=ZERO)]
        if m in ("seq", "sne"):
            self._arity(ops, 3, m, line)
            rd = reg(ops[0])
            first = ProtoInstr("xor", rd=rd, rs=reg(ops[1]), rt=reg(ops[2]))
            if m == "seq":
                return [first, ProtoInstr("sltiu", rt=rd, rs=rd, imm=1)]
            return [first, ProtoInstr("sltu", rd=rd, rs=ZERO, rt=rd)]
        if m in ("sgt", "sge", "sle", "sgtu", "sgeu", "sleu"):
            self._arity(ops, 3, m, line)
            unsigned = m.endswith("u")
            base = m[:3]
            slt = "sltu" if unsigned else "slt"
            rd, a, b = reg(ops[0]), reg(ops[1]), reg(ops[2])
            if base in ("sgt", "sle"):
                a, b = b, a
            first = ProtoInstr(slt, rd=rd, rs=a, rt=b)
            if base in ("sge", "sle"):
                return [first, ProtoInstr("xori", rt=rd, rs=rd, imm=1)]
            return [first]
        return [self._real(m, ops, line)]

    def _expand_li(self, rt: int, value: int) -> List[ProtoInstr]:
        value &= 0xFFFFFFFF
        signed = value - 0x100000000 if value & 0x80000000 else value
        if -32768 <= signed <= 32767:
            return [ProtoInstr("addiu", rt=rt, rs=ZERO, imm=signed)]
        if value <= 0xFFFF:
            return [ProtoInstr("ori", rt=rt, rs=ZERO, imm=value)]
        out = [ProtoInstr("lui", rt=rt, imm=value >> 16)]
        if value & 0xFFFF:
            out.append(ProtoInstr("ori", rt=rt, rs=rt, imm=value & 0xFFFF))
        return out

    def _reg(self, token: str, line: int) -> int:
        try:
            return register_number(token)
        except KeyError:
            raise AssemblerError(f"unknown register {token!r}", line)

    @staticmethod
    def _arity(ops: List[str], n: int, m: str, line: int) -> None:
        if len(ops) != n:
            raise AssemblerError(
                f"{m} expects {n} operands, got {len(ops)}", line)

    def _real(self, m: str, ops: List[str], line: int) -> ProtoInstr:
        """Parse a non-pseudo instruction."""
        info = OPCODES.get(m)
        if info is None:
            raise AssemblerError(f"unknown instruction {m!r}", line)
        reg = lambda tok: self._reg(tok, line)  # noqa: E731
        if info.fmt is Format.J:
            self._arity(ops, 1, m, line)
            return ProtoInstr(m, target=self._operand_value(ops[0], line,
                                                            "abs26"))
        if m in ("syscall", "break"):
            return ProtoInstr(m)
        if m in ("sll", "srl", "sra"):
            self._arity(ops, 3, m, line)
            return ProtoInstr(m, rd=reg(ops[0]), rt=reg(ops[1]),
                              shamt=self._require_int(ops[2], line) & 0x1F)
        if m in ("sllv", "srlv", "srav"):
            self._arity(ops, 3, m, line)
            return ProtoInstr(m, rd=reg(ops[0]), rt=reg(ops[1]),
                              rs=reg(ops[2]))
        if m in ("mult", "multu", "div", "divu"):
            self._arity(ops, 2, m, line)
            return ProtoInstr(m, rs=reg(ops[0]), rt=reg(ops[1]))
        if m in ("mfhi", "mflo"):
            self._arity(ops, 1, m, line)
            return ProtoInstr(m, rd=reg(ops[0]))
        if m in ("mthi", "mtlo"):
            self._arity(ops, 1, m, line)
            return ProtoInstr(m, rs=reg(ops[0]))
        if m == "jr":
            self._arity(ops, 1, m, line)
            return ProtoInstr(m, rs=reg(ops[0]))
        if m == "jalr":
            if len(ops) == 1:
                return ProtoInstr(m, rd=31, rs=reg(ops[0]))
            self._arity(ops, 2, m, line)
            return ProtoInstr(m, rd=reg(ops[0]), rs=reg(ops[1]))
        if info.klass in (InstrClass.LOAD, InstrClass.STORE):
            self._arity(ops, 2, m, line)
            base, offset = self._mem_operand(ops[1], line)
            return ProtoInstr(m, rt=reg(ops[0]), rs=base, imm=offset)
        if m == "lui":
            self._arity(ops, 2, m, line)
            return ProtoInstr(m, rt=reg(ops[0]),
                              imm=self._require_int(ops[1], line) & 0xFFFF)
        if m in ("beq", "bne"):
            self._arity(ops, 3, m, line)
            return ProtoInstr(m, rs=reg(ops[0]), rt=reg(ops[1]),
                              imm=self._operand_value(ops[2], line, "rel16"))
        if info.klass is InstrClass.BRANCH:
            self._arity(ops, 2, m, line)
            return ProtoInstr(m, rs=reg(ops[0]),
                              imm=self._operand_value(ops[1], line, "rel16"))
        if info.fmt is Format.I:
            self._arity(ops, 3, m, line)
            return ProtoInstr(m, rt=reg(ops[0]), rs=reg(ops[1]),
                              imm=self._operand_value(ops[2], line))
        # Generic three-register R-format.
        self._arity(ops, 3, m, line)
        return ProtoInstr(m, rd=reg(ops[0]), rs=reg(ops[1]), rt=reg(ops[2]))

    def _mem_operand(self, token: str, line: int) -> Tuple[int, Union[int, SymRef]]:
        match = re.match(r"^(.*?)\(\s*(\$?\w+)\s*\)$", token.strip())
        if not match:
            raise AssemblerError(f"bad memory operand {token!r}", line)
        offset_text = match.group(1).strip()
        offset: Union[int, SymRef] = 0
        if offset_text:
            offset = self._operand_value(offset_text, line)
        return self._reg(match.group(2), line), offset

    # ------------------------------------------------------------------
    # Pass 2: resolve and emit.
    # ------------------------------------------------------------------
    def link(self, entry_symbol: str = "__start") -> Program:
        self._bind_pending_labels()
        text = bytearray()
        for address, proto in self._protos:
            word = encode(self._resolve(proto, address))
            # pad for any .align gaps inside text
            gap = (address - self.text_base) - len(text)
            if gap:
                text.extend(b"\x00" * gap)
            text.extend(word.to_bytes(4, "little"))
        data = bytearray()
        for item in self._data_items:
            gap = (item.address - self.data_base) - len(data)
            if gap:
                data.extend(b"\x00" * gap)
            for value in item.values:
                resolved = self._resolve_value(value, item.line)
                mask = (1 << (8 * item.size)) - 1
                data.extend((resolved & mask).to_bytes(item.size, "little"))
        entry = self.symbols.get(entry_symbol,
                                 self.symbols.get("main", self.text_base))
        return Program(bytes(text), bytes(data), entry,
                       self.text_base, self.data_base, dict(self.symbols))

    def _resolve_value(self, value: Union[int, SymRef], line: int) -> int:
        if isinstance(value, int):
            return value
        if value.name == "":
            return value.addend  # anonymous absolute address
        if value.name not in self.symbols:
            raise AssemblerError(f"undefined symbol {value.name!r}", line)
        return self.symbols[value.name] + value.addend

    def _resolve(self, proto: ProtoInstr, address: int) -> Instruction:
        imm = proto.imm
        target = proto.target
        if isinstance(imm, SymRef):
            value = self._resolve_value(imm, proto.line)
            if imm.mode == "rel16":
                delta = (value - (address + 4)) >> 2
                if not -32768 <= delta <= 32767:
                    raise AssemblerError("branch out of range", proto.line)
                imm = delta
            elif imm.mode == "hi16":
                imm = (value >> 16) & 0xFFFF
            elif imm.mode == "lo16":
                imm = value & 0xFFFF
            else:
                imm = value
        if isinstance(target, SymRef):
            target = self._resolve_value(target, proto.line)
        return Instruction(proto.mnemonic, rs=proto.rs, rt=proto.rt,
                           rd=proto.rd, shamt=proto.shamt,
                           imm=imm, target=target)


def assemble(source: str, entry_symbol: str = "__start") -> Program:
    """Assemble MIPS source text into a loadable :class:`Program`.

    The entry point is ``__start`` if defined, else ``main``, else the
    first text address.
    """
    asm = Assembler()
    asm.feed(source)
    return asm.link(entry_symbol)
