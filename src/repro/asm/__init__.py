"""MIPS I assembler and disassembler.

The assembler is a classic two-pass design: pass 1 parses sections, labels
and directives and lays out addresses (pseudo-instruction expansions have
deterministic sizes); pass 2 resolves symbols and emits binary words.  Its
output is a :class:`repro.asm.program.Program`, the loadable unit consumed
by every simulator in this repository.
"""

from repro.asm.program import Program, TEXT_BASE, DATA_BASE, STACK_TOP
from repro.asm.assembler import assemble, AssemblerError
from repro.asm.disassembler import disassemble_program, disassemble_word

__all__ = [
    "Program",
    "TEXT_BASE",
    "DATA_BASE",
    "STACK_TOP",
    "assemble",
    "AssemblerError",
    "disassemble_program",
    "disassemble_word",
]
