"""The loadable program image produced by the assembler."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: SPIM-compatible memory layout.
TEXT_BASE = 0x0040_0000
DATA_BASE = 0x1001_0000
STACK_TOP = 0x7FFF_EFFC


@dataclass
class Program:
    """An assembled program: text and data images plus symbol table.

    Byte order is little-endian throughout the system; programs are
    self-contained so the choice is only visible through byte-granular
    access to word data, which the workloads use consistently.
    """

    text: bytes
    data: bytes
    entry: int
    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE
    symbols: Dict[str, int] = field(default_factory=dict)
    source_name: str = "<asm>"
    #: pc -> decoded-entry cache shared by every simulator of this program
    #: (text is immutable, so decode results are a program property; see
    #: :meth:`repro.sim.cpu.Simulator.decode_at`).
    decode_cache: Dict[int, tuple] = field(default_factory=dict,
                                           compare=False, repr=False)
    #: (pc, flags) -> compiled-block factory cache for the fast path
    #: (see :mod:`repro.sim.fastpath`).  Holds exec-generated functions,
    #: so it is intentionally excluded from comparisons.
    fastpath_cache: Dict[tuple, tuple] = field(default_factory=dict,
                                               compare=False, repr=False)

    @property
    def text_end(self) -> int:
        return self.text_base + len(self.text)

    def word_at(self, address: int) -> int:
        """Fetch the text word at ``address`` (must be in the text segment)."""
        offset = address - self.text_base
        if not 0 <= offset <= len(self.text) - 4:
            raise IndexError(f"address 0x{address:08x} outside text segment")
        return int.from_bytes(self.text[offset:offset + 4], "little")

    def num_instructions(self) -> int:
        return len(self.text) // 4
