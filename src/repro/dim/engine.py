"""The online DIM state machine.

This class carries everything the DIM hardware owns — predictor,
reconfiguration cache, translator — and implements the run-time policies:
translate a block the first time it retires, serve later executions from
the cache, extend a cached configuration when its terminating branch
saturates the bimodal counter, and flush a configuration after repeated
mis-speculation.  Both the bit-exact coupled simulator and the fast
trace-driven evaluator drive this same object, which is what keeps them
in cycle-exact agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.cgra.configuration import ConfigBlock, Configuration
from repro.cgra.shape import ArrayShape
from repro.dim.params import DimParams
from repro.dim.predictor import BimodalPredictor
from repro.dim.rcache import ReconfigurationCache
from repro.dim.translator import BlockProvider, Translator

if TYPE_CHECKING:
    from repro.dim.memo import TranslationMemo
from repro.isa.opcodes import InstrClass
from repro.obs import NULL_TELEMETRY
from repro.sim.trace import BasicBlock


@dataclass
class DimStats:
    """Activity counters for the DIM hardware."""

    translations: int = 0
    translated_instructions: int = 0
    extensions: int = 0
    flushes: int = 0
    array_executions: int = 0
    array_instructions: int = 0
    array_alu_ops: int = 0
    array_mult_ops: int = 0
    array_mem_ops: int = 0
    misspeculations: int = 0
    full_commits: int = 0
    reconfiguration_stalls: int = 0
    #: total cycles the array spent executing (for the energy model).
    array_cycles: int = 0
    #: line-cycles actually occupied (for the FU-gating energy study).
    array_line_cycles: int = 0
    #: line-cycles if every line is always powered (no gating).
    array_potential_line_cycles: int = 0
    #: configurations written into the reconfiguration cache.
    config_writes: int = 0
    # ---- dynamic control flow (dynflow.* in the obs schema) ----------
    #: executions of loop-kind configurations.
    loop_executions: int = 0
    #: loop trips started (first trips plus back-edge continuations).
    loop_trips: int = 0
    #: loop-kind configurations written into the cache.
    loop_configs: int = 0
    #: loop configurations retired because the back-edge counter
    #: saturated in the exit direction (the loop phase ended).
    loop_retired: int = 0
    #: executions of dual-kind configurations.
    dual_executions: int = 0
    #: dual-kind configurations written into the cache.
    dual_configs: int = 0
    #: instructions of the losing predicated path, squashed per
    #: execution (priced as array ops but never committed).
    dual_squashed_instructions: int = 0
    #: dual configurations retired because their branch saturated (a
    #: deeper speculative configuration can now take over).
    dual_retired: int = 0


class DimEngine:
    """Predictor + cache + translator with the paper's run-time policies."""

    def __init__(self, shape: ArrayShape, params: DimParams,
                 block_provider: BlockProvider,
                 translation_memo: Optional["TranslationMemo"] = None,
                 telemetry=None):
        self.shape = shape
        self.params = params
        #: telemetry sink shared with the cache and predictor; the
        #: default null sink keeps every hot path uninstrumented.
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        self.predictor = BimodalPredictor(params.predictor_entries,
                                          telemetry=self.telemetry)
        self.cache = ReconfigurationCache(params.cache_slots,
                                          params.cache_policy,
                                          telemetry=self.telemetry)
        self.translator = Translator(shape, params, self.predictor,
                                     block_provider)
        #: optional cross-engine translation cache (see repro.dim.memo);
        #: results are identical with or without it.
        self.translation_memo = translation_memo
        self.stats = DimStats()

    def _translate(self, block: BasicBlock) -> Optional[Configuration]:
        memo = self.translation_memo
        if memo is None:
            return self.translator.translate(block)
        return memo.translate(self.translator, block)

    # ------------------------------------------------------------------
    # Block-start path.
    # ------------------------------------------------------------------
    def lookup(self, pc: int) -> Optional[Configuration]:
        """Cache lookup performed at every block start."""
        return self.cache.lookup(pc)

    def maybe_extend(self, config: Configuration) -> Configuration:
        """Try to deepen a configuration before executing it.

        Called on every cache hit; re-translates only when the last
        block's terminator has become predictable since the build.
        Returns the configuration to execute (the new one if replaced).
        """
        if not config.extendable:
            return config
        last = config.blocks[-1]
        term = last.block.terminator
        if term is None:
            config.extendable = False
            return config
        if term.klass is InstrClass.BRANCH:
            if self.predictor.saturated_direction(last.block.branch_pc) \
                    is None:
                return config
        tel = self.telemetry
        if tel.enabled:
            tel.emit("translation.started",
                     pc=config.blocks[0].block.start_pc, reason="extend")
        new = self._translate(config.blocks[0].block)
        self.stats.translations += 1
        if new is not None \
                and new.covered_instructions > config.covered_instructions:
            self.stats.extensions += 1
            self.stats.translated_instructions += new.covered_instructions
            self._record_config_write(new)
            if tel.enabled:
                tel.emit("speculation.extension", pc=new.start_pc,
                         covered=new.covered_instructions,
                         blocks=len(new.blocks))
                tel.emit("translation.committed", pc=new.start_pc,
                         covered=new.covered_instructions,
                         blocks=len(new.blocks))
            self.cache.insert(new)
            return new
        # nothing gained; remember whether a later attempt could help
        config.extendable = bool(new is not None and new.extendable)
        return config

    # ------------------------------------------------------------------
    # Normal-execution path.
    # ------------------------------------------------------------------
    def observe_branch(self, branch_pc: int, taken: bool) -> None:
        """Train the predictor with a branch executed by the processor."""
        self.predictor.update(branch_pc, taken)

    def consider_translation(self, block: BasicBlock) -> None:
        """Translate a block that just executed normally from its start."""
        if self.cache.peek(block.start_pc) is not None:
            return
        tel = self.telemetry
        if tel.enabled:
            tel.emit("translation.started", pc=block.start_pc,
                     reason="retire")
        config = self._translate(block)
        self.stats.translations += 1
        if config is not None:
            self.stats.translated_instructions += \
                config.covered_instructions
            self._record_config_write(config)
            if tel.enabled:
                tel.emit("translation.committed", pc=config.start_pc,
                         covered=config.covered_instructions,
                         blocks=len(config.blocks))
            self.cache.insert(config)

    def _record_config_write(self, config: Configuration) -> None:
        """Count one cache write, split by configuration kind."""
        stats = self.stats
        stats.config_writes += 1
        kind = config.kind
        if kind == "loop":
            stats.loop_configs += 1
            if self.telemetry.enabled:
                self.telemetry.emit(
                    "dynflow.loop_committed", pc=config.start_pc,
                    blocks=len(config.blocks),
                    covered=config.covered_instructions)
        elif kind == "dual":
            stats.dual_configs += 1
            if self.telemetry.enabled:
                self.telemetry.emit(
                    "dynflow.dual_committed", pc=config.start_pc,
                    taken_covered=config.dual_taken.covered,
                    fallthrough_covered=config.dual_fallthrough.covered)

    # ------------------------------------------------------------------
    # Array-execution bookkeeping (shared by coupled sim and trace eval).
    # ------------------------------------------------------------------
    def begin_execution(self, config: Configuration) -> int:
        """Account one array execution; returns the core stall cycles."""
        stats = self.stats
        stats.array_executions += 1
        result = config.result
        stats.array_alu_ops += result.alu_ops
        stats.array_mult_ops += result.mult_ops
        stats.array_mem_ops += result.mem_ops
        stats.array_cycles += config.exec_cycles
        stats.array_line_cycles += \
            result.lines_used * config.exec_cycles
        stats.array_potential_line_cycles += \
            min(self.shape.rows, 1 << 20) * config.exec_cycles
        stall = max(0, config.reconfiguration_cycles
                    - self.params.reconfig_overlap)
        stats.reconfiguration_stalls += stall
        kind = config.kind
        if kind == "loop":
            stats.loop_executions += 1
            stats.loop_trips += 1
        elif kind == "dual":
            stats.dual_executions += 1
        return stall

    def loop_iteration(self, config: Configuration) -> int:
        """Account one additional loop trip; returns its array cycles.

        A continuation trip re-executes every placed operation but pays
        neither the reconfiguration fetch nor the speculative write-back
        drain (carried operands stay routed inside the array).  The
        per-trip exit check is charged by the caller, on top.
        """
        stats = self.stats
        result = config.result
        stats.loop_trips += 1
        stats.array_alu_ops += result.alu_ops
        stats.array_mult_ops += result.mult_ops
        stats.array_mem_ops += result.mem_ops
        cycles = config.trip_cycles
        stats.array_cycles += cycles
        stats.array_line_cycles += result.lines_used * cycles
        stats.array_potential_line_cycles += \
            min(self.shape.rows, 1 << 20) * cycles
        return cycles

    def loop_backedge(self, config: Configuration,
                      cfg_block: ConfigBlock, actual: bool) -> bool:
        """Resolve one iterating back-edge; True when the loop continues.

        The back-edge check is architecturally non-speculative — every
        trip resolves it before the next iteration commits — so an exit
        is *not* a mis-speculation: no penalty, no flush pressure, and
        the mis-speculation counter resets either way.  When the
        counter has saturated in the exit direction the loop phase is
        over and the configuration is retired so a later translation
        can rebuild for the new behaviour.
        """
        self.predictor.update(cfg_block.block.branch_pc, actual)
        config.misspec_count = 0
        if actual == cfg_block.expected_taken:
            return True
        if self.predictor.saturated_direction(cfg_block.block.branch_pc) \
                == (not cfg_block.expected_taken):
            self.cache.invalidate(config.start_pc)
            self.stats.loop_retired += 1
            if self.telemetry.enabled:
                self.telemetry.emit("translation.evicted",
                                    pc=config.start_pc,
                                    reason="loop_retired")
        return False

    def dual_resolution(self, config: Configuration,
                        cfg_block: ConfigBlock, actual: bool
                        ) -> ConfigBlock:
        """Resolve a predicated branch; returns the committed side.

        The losing path's operations were executed (and priced) by the
        array but their write-backs are gated off — predication cost,
        not a mis-speculation.  Once the branch saturates, the dual
        configuration is retired: a speculative rebuild can now merge
        deeper along the now-predictable direction.
        """
        self.predictor.update(cfg_block.block.branch_pc, actual)
        config.misspec_count = 0
        winner = config.dual_taken if actual else config.dual_fallthrough
        loser = config.dual_fallthrough if actual else config.dual_taken
        self.stats.dual_squashed_instructions += loser.covered
        if self.predictor.saturated_direction(cfg_block.block.branch_pc) \
                is not None:
            self.cache.invalidate(config.start_pc)
            self.stats.dual_retired += 1
            if self.telemetry.enabled:
                self.telemetry.emit("translation.evicted",
                                    pc=config.start_pc,
                                    reason="dual_retired")
        return winner

    def speculation_outcome(self, config: Configuration,
                            cfg_block: ConfigBlock, actual: bool) -> bool:
        """Resolve one speculated terminator; returns True on a match.

        Trains the predictor and counts mis-speculations.  Per the paper,
        a configuration is flushed when its branch "achiev[es] the
        opposite value of the respective counter" — i.e. the program's
        behaviour genuinely changed phase — or after
        ``misspec_flush_threshold`` *consecutive* wrong directions.  An
        occasional wrong exit (a loop ending) costs only the
        mis-speculation penalty and never evicts the configuration.
        """
        is_cond = cfg_block.block.is_conditional
        if is_cond:
            self.predictor.update(cfg_block.block.branch_pc, actual)
        if actual == cfg_block.expected_taken:
            config.misspec_count = 0
            return True
        self.stats.misspeculations += 1
        config.misspec_count += 1
        opposite = is_cond and self.predictor.saturated_direction(
            cfg_block.block.branch_pc) == (not cfg_block.expected_taken)
        if opposite \
                or config.misspec_count >= \
                self.params.misspec_flush_threshold:
            self.cache.invalidate(config.start_pc)
            self.stats.flushes += 1
            if self.telemetry.enabled:
                self.telemetry.emit(
                    "predictor.flush", pc=config.start_pc,
                    branch_pc=cfg_block.block.branch_pc if is_cond else 0,
                    reason="opposite" if opposite else "consecutive")
                self.telemetry.emit("translation.evicted",
                                    pc=config.start_pc, reason="flush")
        return False
