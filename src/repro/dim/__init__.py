"""Dynamic Instruction Merging — the paper's contribution.

DIM is a binary-translation engine implemented in hardware, working in
parallel with the processor pipeline.  This package models it faithfully
at the algorithmic level:

- :mod:`repro.dim.params` — the policy constants (cache slots,
  speculation depth, flush threshold, minimum block length).
- :mod:`repro.dim.predictor` — the bimodal branch predictor that gates
  speculative block merging.
- :mod:`repro.dim.rcache` — the PC-indexed, FIFO-replacement
  reconfiguration cache.
- :mod:`repro.dim.translator` — the detection/translation algorithm that
  turns a basic-block tree into an array configuration.
- :mod:`repro.dim.engine` — the online state machine tying it together
  (translate on first sight, execute from cache afterwards, extend
  configurations when counters saturate, flush on repeated
  mis-speculation).
- :mod:`repro.dim.memo` — probe-validated memoization of translations,
  shared across the engines of a design-space sweep.
"""

from repro.dim.params import DimParams
from repro.dim.predictor import BimodalPredictor
from repro.dim.rcache import ReconfigurationCache
from repro.dim.translator import Translator
from repro.dim.engine import DimEngine, DimStats
from repro.dim.memo import TranslationMemo

__all__ = [
    "DimParams",
    "BimodalPredictor",
    "ReconfigurationCache",
    "Translator",
    "DimEngine",
    "DimStats",
    "TranslationMemo",
]
