"""The binary-translation algorithm (Section 4.2).

Translation starts at the first instruction after a branch (a dynamic
basic block start) and walks forward, placing each instruction into the
array through the :class:`~repro.cgra.allocation.Allocator`.  It stops at
an unsupported instruction or when the array saturates, covering a prefix
of the block.

With speculation enabled, a fully-covered block whose terminating branch
has a *saturated* bimodal counter is merged with its predicted successor:
the branch comparison itself is placed in the array and translation
continues into the next block, up to ``max_spec_depth`` conditional
levels; unconditional ``j`` terminators are followed for free (they
cannot mis-speculate).  Extension across a branch is all-or-nothing with
respect to array resources: if the speculated block's body does not fit,
the whole extension is rolled back — cramming a partial speculated block
into leftover rows would forfeit that block's own (larger) standalone
configuration.  An extension that stops at an *unsupported* instruction
is kept, since the standalone configuration could not have covered more
either.

The two dynamic control-flow modes extend this walk (see
``docs/toolchain.md`` §Dynamic control flow):

- **loop closure** (``DimParams.loop_enabled``) — when the saturated
  direction of a conditional terminator targets the configuration's own
  start PC, the chain is a loop body: instead of unrolling into the
  predicted successor, the back-edge branch is placed and the
  configuration is *closed* (``kind="loop"``).  Closure is bounded by
  ``loop_max_body_blocks`` and by ``loop_carry_regs`` (the live-in set
  must fit the rotating-register map that carries operands between
  trips).  The decision consumes no extra probes: it is a function of
  the already-probed direction and static PCs, which keeps the result
  memoizable.
- **dual-path merge** (``DimParams.dual_enabled``) — where the paper's
  walk stops because the counter is *not* saturated, both successors
  are probed and, if the branch plus both covered bodies fit
  (all-or-nothing per side, with the dependence view forked so neither
  path observes the other's writes), the configuration closes as
  ``kind="dual"`` with the terminator predicated rather than predicted.
"""

from __future__ import annotations

from typing import Callable, List, MutableSequence, Optional, Tuple

from repro.cgra.allocation import Allocator
from repro.cgra.configuration import ConfigBlock, Configuration
from repro.cgra.dataflow import dim_supported
from repro.cgra.shape import ArrayShape
from repro.dim.params import DimParams
from repro.dim.predictor import BimodalPredictor
from repro.isa.opcodes import InstrClass
from repro.sim.trace import BasicBlock

#: successor lookup: start PC -> block, or None when not yet discovered.
BlockProvider = Callable[[int], Optional[BasicBlock]]

#: probe-log record kinds (see :mod:`repro.dim.memo`).  A translation's
#: outcome is a pure function of its first block, the array shape, the
#: policy knobs, and the answers the walk receives from the predictor
#: and the block provider; recording those answers makes the result
#: memoizable across engines.
PROBE_DIRECTION = 0
PROBE_SUCCESSOR = 1

#: one recorded query: (kind, pc, answer).
Probe = Tuple[int, int, object]


def _body(block: BasicBlock):
    if block.terminator is None:
        return block.instructions
    return block.instructions[:-1]


def _place_body(alloc: Allocator, block: BasicBlock) -> Tuple[int, str]:
    """Place a block body; returns (covered, stop_reason).

    ``stop_reason`` is 'full' (everything placed), 'unsupported' (an
    instruction DIM cannot translate) or 'resources' (the array is out
    of lines/units/immediates).
    """
    covered = 0
    for instr in _body(block):
        if not dim_supported(instr):
            return covered, "unsupported"
        if not alloc.place(instr):
            return covered, "resources"
        covered += 1
    return covered, "full"


class Translator:
    """Builds array configurations from basic-block trees."""

    def __init__(self, shape: ArrayShape, params: DimParams,
                 predictor: BimodalPredictor,
                 block_provider: BlockProvider):
        self.shape = shape
        self.params = params
        self.predictor = predictor
        self.block_provider = block_provider

    def translate(self, first_block: BasicBlock,
                  probe_log: Optional[MutableSequence[Probe]] = None
                  ) -> Optional[Configuration]:
        """Translate the tree rooted at ``first_block``.

        Returns None when fewer than ``min_block_instructions`` would be
        covered (the paper does not cache configurations of three or
        fewer instructions).  When ``probe_log`` is given, every
        predictor/provider query and its answer is appended to it, which
        is what lets :class:`repro.dim.memo.TranslationMemo` revalidate
        and reuse the result.
        """
        params = self.params
        alloc = Allocator(self.shape)
        cfg_blocks: List[ConfigBlock] = []
        spec_depth = 0
        extendable = False  # True when a later attempt may merge deeper
        kind = "linear"
        dual_taken: Optional[ConfigBlock] = None
        dual_fallthrough: Optional[ConfigBlock] = None

        block = first_block
        covered, reason = _place_body(alloc, block)
        # Everything after the first block is speculative: its live-outs
        # are gated on branch resolution (see AllocationResult).
        alloc.mark_nonspec_boundary()

        while True:
            if reason != "full":
                cfg_blocks.append(ConfigBlock(block, covered, False))
                break
            term = block.terminator
            if term is None or term.mnemonic in ("jr", "jalr", "jal"):
                # syscall / indirect / call boundaries are never merged
                cfg_blocks.append(ConfigBlock(block, covered, False))
                break
            if not params.speculation \
                    or len(cfg_blocks) + 1 >= params.max_blocks:
                cfg_blocks.append(ConfigBlock(block, covered, False))
                break

            is_branch = term.klass is InstrClass.BRANCH
            if is_branch:
                if spec_depth >= params.max_spec_depth:
                    cfg_blocks.append(ConfigBlock(block, covered, False))
                    break
                direction = self.predictor.saturated_direction(
                    block.branch_pc)
                if probe_log is not None:
                    probe_log.append((PROBE_DIRECTION, block.branch_pc,
                                      direction))
                if direction is None:
                    # not biased enough for speculation; a dual-path
                    # merge covers exactly this case.
                    if params.dual_enabled:
                        sides = self._try_dual(alloc, cfg_blocks, block,
                                               covered, probe_log)
                        if sides is not None:
                            kind = "dual"
                            dual_taken, dual_fallthrough = sides
                            break
                    # retry on a later execution
                    cfg_blocks.append(ConfigBlock(block, covered, False))
                    extendable = True
                    break
                next_pc = block.taken_target() if direction \
                    else block.fallthrough_pc
                if params.loop_enabled \
                        and next_pc == first_block.start_pc \
                        and len(cfg_blocks) + 1 \
                        <= params.loop_max_body_blocks:
                    # saturated back-edge to our own start: close the
                    # chain into an iterating configuration instead of
                    # unrolling.  No extra probes: the decision is a
                    # function of the probed direction and static PCs.
                    snapshot = alloc.snapshot()
                    if alloc.place(term) \
                            and alloc.input_count <= params.loop_carry_regs:
                        cfg_blocks.append(
                            ConfigBlock(block, covered, True, direction))
                        kind = "loop"
                        break
                    # does not fit the loop bounds: fall back to the
                    # paper's unrolling merge below.
                    alloc.restore(snapshot)
            else:  # unconditional j
                direction = True
                next_pc = block.taken_target()

            next_block = self.block_provider(next_pc)
            if probe_log is not None:
                probe_log.append((PROBE_SUCCESSOR, next_pc, next_block))
            if next_block is None:
                cfg_blocks.append(ConfigBlock(block, covered, False))
                extendable = True
                break

            snapshot = alloc.snapshot()
            placed_term = not is_branch or alloc.place(term)
            if placed_term:
                next_covered, next_reason = _place_body(alloc, next_block)
            if not placed_term or next_reason == "resources":
                # all-or-nothing: give the successor its standalone config
                alloc.restore(snapshot)
                cfg_blocks.append(ConfigBlock(block, covered, False))
                break
            cfg_blocks.append(ConfigBlock(block, covered, True, direction))
            if is_branch:
                spec_depth += 1
            block = next_block
            covered, reason = next_covered, next_reason

        config = Configuration(
            start_pc=first_block.start_pc,
            blocks=cfg_blocks,
            result=alloc.finish(),
            shape=self.shape,
            extendable=extendable and params.speculation,
            kind=kind,
            dual_taken=dual_taken,
            dual_fallthrough=dual_fallthrough,
            gate_cycles=params.dual_gate_cycles if kind == "dual" else 0,
            loop_check_cycles=params.loop_exit_check_cycles
            if kind == "loop" else 0,
        )
        if config.covered_instructions < params.min_block_instructions:
            return None
        return config

    def _try_dual(self, alloc: Allocator,
                  cfg_blocks: List[ConfigBlock], block: BasicBlock,
                  covered: int,
                  probe_log: Optional[MutableSequence[Probe]]
                  ) -> Optional[Tuple[ConfigBlock, ConfigBlock]]:
        """Attempt a predicated dual-path merge at ``block``'s branch.

        Both successors are probed (in taken-then-fallthrough order, so
        the probe sequence stays deterministic) and both covered bodies
        must place with at least one instruction each and without
        running out of array resources; otherwise everything is rolled
        back and the caller keeps the paper's
        stop-at-unpredictable-branch behaviour.  On success the merged
        branch block is appended and the two side prefixes (taken,
        fallthrough) are returned.
        """
        taken_pc = block.taken_target()
        taken_block = self.block_provider(taken_pc)
        if probe_log is not None:
            probe_log.append((PROBE_SUCCESSOR, taken_pc, taken_block))
        if taken_block is None:
            return None
        ft_pc = block.fallthrough_pc
        ft_block = self.block_provider(ft_pc)
        if probe_log is not None:
            probe_log.append((PROBE_SUCCESSOR, ft_pc, ft_block))
        if ft_block is None:
            return None
        snapshot = alloc.snapshot()
        if not alloc.place(block.terminator):
            alloc.restore(snapshot)
            return None
        mark = alloc.fork_dataflow()
        taken_covered, taken_reason = _place_body(alloc, taken_block)
        if taken_reason == "resources" or taken_covered == 0:
            alloc.restore(snapshot)
            return None
        taken_view = alloc.rewind_dataflow(mark)
        ft_covered, ft_reason = _place_body(alloc, ft_block)
        if ft_reason == "resources" or ft_covered == 0:
            alloc.restore(snapshot)
            return None
        alloc.join_dataflow(taken_view)
        cfg_blocks.append(ConfigBlock(block, covered, True, None))
        return (ConfigBlock(taken_block, taken_covered, False),
                ConfigBlock(ft_block, ft_covered, False))
