"""DIM policy parameters.

Defaults follow the paper's wording: configurations must exceed three
instructions to be cached; speculation covers "up to three basic blocks";
a configuration is flushed after "a predefined number" of
mis-speculations (we default to 2); counters must saturate before a block
is merged speculatively.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DimParams:
    """Behavioural knobs of the DIM engine."""

    #: reconfiguration-cache capacity (the paper sweeps 16 / 64 / 256).
    cache_slots: int = 64
    #: 'fifo' (the paper) or 'lru' (ablation).
    cache_policy: str = "fifo"
    #: enable speculative merging of basic blocks.
    speculation: bool = False
    #: maximum speculated conditional branches per configuration.
    max_spec_depth: int = 3
    #: hard bound on blocks per configuration (catches long `j` chains).
    max_blocks: int = 8
    #: minimum covered instructions for a configuration to be cached
    #: ("more than three instructions").
    min_block_instructions: int = 4
    #: wrong-direction executions before the configuration is flushed.
    misspec_flush_threshold: int = 2
    #: pipeline refill cycles after the array exits on a wrong direction
    #: (squash the gated write-backs, refetch from the resolved target).
    misspec_penalty: int = 4
    #: bimodal predictor size (2-bit counters).
    predictor_entries: int = 512
    #: pipeline stages that overlap reconfiguration ("three cycles
    #: available for the array reconfiguration").
    reconfig_overlap: int = 3
