"""DIM policy parameters.

Defaults follow the paper's wording: configurations must exceed three
instructions to be cached; speculation covers "up to three basic blocks";
a configuration is flushed after "a predefined number" of
mis-speculations (we default to 2); counters must saturate before a block
is merged speculatively.

The ``dynflow_mode`` knob enables the dynamic control-flow extensions
(loop-aware configurations and predicated dual-path merge — see
``docs/toolchain.md`` §Dynamic control flow).  Both modes require
``speculation=True`` to have any effect: they reuse the speculative
merge walk and its all-or-nothing resource discipline.
"""

from __future__ import annotations

from dataclasses import dataclass

#: valid reconfiguration-cache replacement policies.
CACHE_POLICIES = ("fifo", "lru")

#: valid dynamic control-flow modes: 'off' reproduces the paper's
#: translator; 'loop' closes saturated back-edges into iterating
#: configurations; 'dual' merges both directions of an unsaturated
#: branch under predication; 'both' enables the two together.
DYNFLOW_MODES = ("off", "loop", "dual", "both")


@dataclass(frozen=True)
class DimParams:
    """Behavioural knobs of the DIM engine."""

    #: reconfiguration-cache capacity (the paper sweeps 16 / 64 / 256).
    cache_slots: int = 64
    #: 'fifo' (the paper) or 'lru' (ablation).
    cache_policy: str = "fifo"
    #: enable speculative merging of basic blocks.
    speculation: bool = False
    #: maximum speculated conditional branches per configuration.
    max_spec_depth: int = 3
    #: hard bound on blocks per configuration (catches long `j` chains).
    max_blocks: int = 8
    #: minimum covered instructions for a configuration to be cached
    #: ("more than three instructions").
    min_block_instructions: int = 4
    #: wrong-direction executions before the configuration is flushed.
    misspec_flush_threshold: int = 2
    #: pipeline refill cycles after the array exits on a wrong direction
    #: (squash the gated write-backs, refetch from the resolved target).
    misspec_penalty: int = 4
    #: bimodal predictor size (2-bit counters).
    predictor_entries: int = 512
    #: pipeline stages that overlap reconfiguration ("three cycles
    #: available for the array reconfiguration").
    reconfig_overlap: int = 3
    #: dynamic control-flow mode (see :data:`DYNFLOW_MODES`).
    dynflow_mode: str = "off"
    #: largest translated block chain a back-edge may close into one
    #: iterating configuration (counts every block of the loop body).
    loop_max_body_blocks: int = 4
    #: bound on the rotating-register map of an iterating configuration:
    #: a loop is only closed when its live-in operand set fits, so every
    #: trip after the first routes carried values inside the array
    #: instead of re-fetching the input context from the register file.
    loop_carry_regs: int = 8
    #: per-trip cost of resolving the iterating back-edge (the honest
    #: exit check: every trip tests the branch before the next iteration
    #: commits).
    loop_exit_check_cycles: int = 1
    #: per-execution cost of gating a dual-path configuration's
    #: write-backs on the resolved branch direction.
    dual_gate_cycles: int = 1

    def __post_init__(self) -> None:
        if self.cache_policy not in CACHE_POLICIES:
            valid = ", ".join(CACHE_POLICIES)
            raise ValueError(
                f"unknown cache_policy {self.cache_policy!r}: valid "
                f"policies are {valid}")
        if self.dynflow_mode not in DYNFLOW_MODES:
            valid = ", ".join(DYNFLOW_MODES)
            raise ValueError(
                f"unknown dynflow_mode {self.dynflow_mode!r}: valid "
                f"modes are {valid}")
        if self.loop_max_body_blocks < 1:
            raise ValueError("loop_max_body_blocks must be >= 1")
        if self.loop_carry_regs < 0:
            raise ValueError("loop_carry_regs must be >= 0")
        if self.loop_exit_check_cycles < 0:
            raise ValueError("loop_exit_check_cycles must be >= 0")
        if self.dual_gate_cycles < 0:
            raise ValueError("dual_gate_cycles must be >= 0")

    @property
    def loop_enabled(self) -> bool:
        """Loop-aware configurations active (needs speculation)."""
        return self.speculation and self.dynflow_mode in ("loop", "both")

    @property
    def dual_enabled(self) -> bool:
        """Predicated dual-path merge active (needs speculation)."""
        return self.speculation and self.dynflow_mode in ("dual", "both")
