"""The reconfiguration cache.

A fully-associative cache of finished configurations, indexed by the PC
of the first translated instruction and replaced FIFO, exactly as in
Section 3 ("a new entry in the cache (based on FIFO) is created").  An
LRU policy is available for the replacement-policy ablation bench.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.cgra.configuration import Configuration
from repro.obs import NULL_TELEMETRY


class ReconfigurationCache:
    """PC-indexed configuration store with FIFO or LRU replacement."""

    def __init__(self, slots: int, policy: str = "fifo", telemetry=None):
        if slots <= 0:
            raise ValueError("cache needs at least one slot")
        if policy not in ("fifo", "lru"):
            raise ValueError(f"unknown policy {policy!r}")
        self.slots = slots
        self.policy = policy
        self._entries: "OrderedDict[int, Configuration]" = OrderedDict()
        self.lookups = 0
        self.hits = 0
        self.insertions = 0
        self.evictions = 0
        self.invalidations = 0
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        # lookup() runs once per executed block: when telemetry is on,
        # shadow it with the instrumented variant on the *instance* so
        # the disabled path keeps the uninstrumented method untouched.
        if self.telemetry.enabled:
            self.lookup = self._traced_lookup  # type: ignore[assignment]

    def lookup(self, pc: int) -> Optional[Configuration]:
        """Stats-counting lookup, performed once per executed block."""
        self.lookups += 1
        config = self._entries.get(pc)
        if config is not None:
            self.hits += 1
            config.hits += 1
            if self.policy == "lru":
                self._entries.move_to_end(pc)
        return config

    def _traced_lookup(self, pc: int) -> Optional[Configuration]:
        config = ReconfigurationCache.lookup(self, pc)
        self.telemetry.emit(
            "rcache.hit" if config is not None else "rcache.miss", pc=pc)
        return config

    def peek(self, pc: int) -> Optional[Configuration]:
        """Stats-free lookup used by the engine's bookkeeping."""
        return self._entries.get(pc)

    def insert(self, config: Configuration) -> None:
        """Insert (or replace) the configuration for its start PC.

        Replacement of an existing entry keeps its queue position — the
        hardware rewrites the slot in place.
        """
        pc = config.start_pc
        if pc in self._entries:
            old = self._entries[pc]
            config.builds = old.builds + 1
            self._entries[pc] = config
            return
        if len(self._entries) >= self.slots:
            victim_pc, _ = self._entries.popitem(last=False)
            self.evictions += 1
            if self.telemetry.enabled:
                self.telemetry.emit("rcache.evict", pc=victim_pc)
        self._entries[pc] = config
        self.insertions += 1

    def invalidate(self, pc: int) -> None:
        if pc in self._entries:
            del self._entries[pc]
            self.invalidations += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, pc: int) -> bool:
        return pc in self._entries

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0
