"""Bimodal branch predictor (Smith, 1981) used by DIM's speculation policy.

Each branch maps to a 2-bit saturating counter.  DIM only merges a basic
block into a configuration when the counter of the guarding branch is
*saturated* (0 = strongly not-taken, 3 = strongly taken), per Section 4.2.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs import NULL_TELEMETRY


class BimodalPredictor:
    """A table of 2-bit saturating counters indexed by branch PC."""

    STRONG_NOT_TAKEN = 0
    WEAK_NOT_TAKEN = 1
    WEAK_TAKEN = 2
    STRONG_TAKEN = 3

    def __init__(self, entries: int = 512, initial: int = 1,
                 telemetry=None):
        if entries & (entries - 1):
            raise ValueError("predictor entries must be a power of two")
        self.entries = entries
        self._mask = entries - 1
        self._initial = initial
        self._counters: Dict[int, int] = {}
        self.updates = 0
        self.hits = 0
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        # update() runs once per executed branch: shadow it with the
        # instrumented variant only when telemetry is enabled, keeping
        # the disabled path byte-identical to the plain method.
        if self.telemetry.enabled:
            self.update = self._traced_update  # type: ignore[assignment]

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def counter(self, pc: int) -> int:
        return self._counters.get(self._index(pc), self._initial)

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        return self.counter(pc) >= self.WEAK_TAKEN

    def saturated_direction(self, pc: int) -> Optional[bool]:
        """True/False when the counter is saturated, None otherwise."""
        counter = self.counter(pc)
        if counter == self.STRONG_TAKEN:
            return True
        if counter == self.STRONG_NOT_TAKEN:
            return False
        return None

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._counters.get(index, self._initial)
        self.updates += 1
        if (counter >= self.WEAK_TAKEN) == taken:
            self.hits += 1
        if taken:
            counter = min(self.STRONG_TAKEN, counter + 1)
        else:
            counter = max(self.STRONG_NOT_TAKEN, counter - 1)
        self._counters[index] = counter

    def _traced_update(self, pc: int, taken: bool) -> None:
        BimodalPredictor.update(self, pc, taken)
        self.telemetry.emit("predictor.update", pc=pc, taken=taken,
                            counter=self.counter(pc))

    @property
    def accuracy(self) -> float:
        return self.hits / self.updates if self.updates else 0.0
