"""Cross-engine memoization of DIM translations.

Translating a block tree is the hot path of a design-space sweep: the
profile of a single `evaluate_trace` call is ~80% translator+allocator
work, and a Table 2 matrix re-runs that work once per (workload, system)
cell even though systems that differ only in reconfiguration-cache slots
or timing produce *identical* translations.

:class:`TranslationMemo` removes that redundancy.  A translation's
outcome is a pure function of

- the first block (identity — blocks hash by identity per trace table),
- the array shape,
- the translation-policy knobs of :class:`~repro.dim.params.DimParams`
  (speculation, depth/blocks limits, minimum cached length), and
- the answers the translation walk receives from the bimodal predictor
  (``saturated_direction``) and the block provider.

The first three form the memo key.  The fourth is handled by *probe
validation*: the first translation under a key records every query and
its answer (see ``probe_log`` in
:meth:`repro.dim.translator.Translator.translate`); a later call replays
the recorded queries against the live predictor/provider and reuses the
stored result only when every answer matches.  Because the walk's
control flow is fully determined by the key plus the probe answers, a
validated hit is guaranteed to reproduce what a fresh translation would
have built — sweep results stay byte-identical with or without the memo
(asserted by the test suite).

Stored configurations are pristine templates; every hit (and the miss
that created the template) hands out a fresh :class:`Configuration`
clone, because the engine mutates runtime fields (``extendable``,
``misspec_count``, cache ``hits``/``builds``) in place.  The immutable
parts — the block list and the :class:`AllocationResult` — are shared.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cgra.configuration import Configuration
from repro.cgra.shape import ArrayShape
from repro.dim.params import DimParams
from repro.dim.translator import (
    PROBE_DIRECTION,
    Probe,
    Translator,
)
from repro.sim.trace import BasicBlock

#: DimParams fields that influence translation.  Cache geometry/policy,
#: mis-speculation handling and predictor sizing deliberately excluded:
#: systems differing only in those share one memo partition.  The
#: dynflow knobs are included because they change both the walk (mode,
#: loop bounds) and the built configuration's cost fields (gate and
#: exit-check cycles are baked into the template).
_POLICY_FIELDS = ("speculation", "max_spec_depth", "max_blocks",
                  "min_block_instructions", "dynflow_mode",
                  "loop_max_body_blocks", "loop_carry_regs",
                  "loop_exit_check_cycles", "dual_gate_cycles")

_MemoKey = Tuple[BasicBlock, ArrayShape, Tuple]
#: (recorded probes, pristine template or None when too short to cache).
_Variant = Tuple[Tuple[Probe, ...], Optional[Configuration]]


def policy_key(params: DimParams) -> Tuple:
    """The translation-relevant projection of ``params``."""
    return tuple(getattr(params, field) for field in _POLICY_FIELDS)


def _instantiate(template: Optional[Configuration]
                 ) -> Optional[Configuration]:
    """A fresh engine-owned clone of a pristine template."""
    if template is None:
        return None
    return Configuration(
        start_pc=template.start_pc,
        blocks=template.blocks,
        result=template.result,
        shape=template.shape,
        extendable=template.extendable,
        kind=template.kind,
        dual_taken=template.dual_taken,
        dual_fallthrough=template.dual_fallthrough,
        gate_cycles=template.gate_cycles,
        loop_check_cycles=template.loop_check_cycles,
    )


class TranslationMemo:
    """Probe-validated translation cache shared across DIM engines.

    One memo instance is scoped to a single workload trace (keys include
    block identities, so sharing wider is safe but pins every trace's
    blocks in memory — the sweep engine creates one memo per workload
    and drops it when the workload's row of the matrix completes).
    """

    #: bound on stored (probe-set, result) variants per key; distinct
    #: variants correspond to distinct predictor phases of the entry
    #: branch region, which is small in practice.
    MAX_VARIANTS = 16

    __slots__ = ("_entries", "hits", "misses")

    def __init__(self) -> None:
        self._entries: Dict[_MemoKey, List[_Variant]] = {}
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def translate(self, translator: Translator,
                  block: BasicBlock) -> Optional[Configuration]:
        """Memoized equivalent of ``translator.translate(block)``."""
        key = (block, translator.shape, policy_key(translator.params))
        variants = self._entries.get(key)
        if variants is not None:
            predictor = translator.predictor
            provider = translator.block_provider
            for index, (probes, template) in enumerate(variants):
                for kind, pc, answer in probes:
                    if kind == PROBE_DIRECTION:
                        if predictor.saturated_direction(pc) is not answer:
                            break
                    elif provider(pc) is not answer:
                        break
                else:
                    self.hits += 1
                    if index:  # move-to-front: phases cluster in time
                        variants.insert(0, variants.pop(index))
                    return _instantiate(template)
        probe_log: List[Probe] = []
        config = translator.translate(block, probe_log)
        self.misses += 1
        if variants is None:
            variants = self._entries[key] = []
        elif len(variants) >= self.MAX_VARIANTS:
            variants.pop()
        variants.insert(0, (tuple(probe_log), config))
        return _instantiate(config)
