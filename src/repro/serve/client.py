"""A blocking Python client for the evaluation service.

Stdlib only; every protocol failure surfaces as a :class:`ServeError`
carrying the structured error code, so callers dispatch on ``exc.code``
instead of parsing prose.

Transport: requests ride pooled keep-alive
:class:`http.client.HTTPConnection` objects instead of one fresh TCP
connection per request — the service speaks HTTP/1.1 with explicit
``Content-Length``, so connections persist across requests.  A
connection that went stale while idle (server restarted, socket timed
out) is detected on first use and replaced transparently, retrying the
request once.  ``transport_stats`` exposes how many requests were
served versus how many connections were actually opened, which is what
the throughput bench asserts on: a polling loop must not pay
per-request TCP setup.

>>> client = ServeClient("http://127.0.0.1:8350")
>>> job = client.submit("evaluate",
...                     configs=[{"array": "C2", "slots": 64,
...                               "speculation": True}],
...                     names=["crc"], fast=True)
>>> result = client.wait(job["job_id"])
>>> print(result["result"]["suite_json"])
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
import urllib.parse
from typing import Dict, List, Optional

from repro.serve.protocol import PROTOCOL_VERSION, JobState


class ServeError(Exception):
    """A structured error returned by the service."""

    def __init__(self, code: str, message: str,
                 http_status: int = 400,
                 field: Optional[str] = None):
        super().__init__(message)
        self.code = code
        self.http_status = http_status
        self.field = field


class _Connection(http.client.HTTPConnection):
    """HTTPConnection with Nagle disabled.

    :mod:`http.client` writes request head and body as separate
    ``send()`` calls; on a persistent connection Nagle holds the second
    write until the peer's delayed ACK (~40ms on Linux), which would
    cap a polling loop at ~25 requests/s.  ``TCP_NODELAY`` removes the
    stall; the per-request benefit is what ``transport_stats`` benches
    measure.
    """

    def connect(self):
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


class ConnectionPool:
    """A small stack of idle keep-alive connections to one host.

    Threads check a connection out for the duration of one request and
    return it afterwards, so concurrent callers (the fleet coordinator
    forwards from many HTTP handler threads) each ride their own
    persistent connection instead of serialising on a single socket.
    Connections that died while idle are simply discarded by the
    caller; ``opened`` counts real TCP setups.
    """

    def __init__(self, host: str, port: int, timeout: float):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.opened = 0
        self._idle: List[http.client.HTTPConnection] = []
        self._lock = threading.Lock()

    def acquire(self) -> http.client.HTTPConnection:
        with self._lock:
            if self._idle:
                return self._idle.pop()
            self.opened += 1
        return _Connection(self.host, self.port, timeout=self.timeout)

    def release(self, conn: http.client.HTTPConnection) -> None:
        with self._lock:
            self._idle.append(conn)

    def discard(self, conn: http.client.HTTPConnection) -> None:
        try:
            conn.close()
        except OSError:
            pass

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            self.discard(conn)


class ServeClient:
    """Thin blocking wrapper over the versioned JSON protocol."""

    def __init__(self, base_url: str = "http://127.0.0.1:8350",
                 timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        parsed = urllib.parse.urlsplit(self.base_url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"only http:// URLs are supported, got "
                             f"{base_url!r}")
        self._pool = ConnectionPool(parsed.hostname or "127.0.0.1",
                                    parsed.port or 80, timeout)
        self.requests_sent = 0
        self.stale_retries = 0

    # ------------------------------------------------------------------
    # Transport.
    # ------------------------------------------------------------------
    @property
    def transport_stats(self) -> Dict[str, int]:
        """Connection-reuse accounting for benches and tests."""
        return {"requests": self.requests_sent,
                "connections_opened": self._pool.opened,
                "stale_retries": self.stale_retries}

    def close(self) -> None:
        """Drop every pooled idle connection (the client stays usable)."""
        self._pool.close()

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, object]] = None) -> object:
        data = (json.dumps(body).encode() if body is not None
                else (b"" if method == "POST" else None))
        target = f"/v1/{path}"
        self.requests_sent += 1
        # one transparent retry: a pooled connection can have gone
        # stale while idle, which only shows up on the next use.
        for attempt in (0, 1):
            conn = self._pool.acquire()
            fresh = conn.sock is None
            try:
                conn.request(method, target, body=data,
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                raw = response.read()
                content_type = (response.getheader("Content-Type") or "")
                status = response.status
            except (http.client.HTTPException, ConnectionError,
                    BrokenPipeError, OSError):
                self._pool.discard(conn)
                if fresh or attempt:
                    raise
                self.stale_retries += 1
                continue
            if response.will_close:
                self._pool.discard(conn)
            else:
                self._pool.release(conn)
            return self._decode(status, raw, content_type)

    def _decode(self, status: int, raw: bytes,
                content_type: str) -> object:
        if status >= 400:
            try:
                error = json.loads(raw.decode()).get("error", {})
            except (json.JSONDecodeError, UnicodeDecodeError):
                error = {}
            raise ServeError(error.get("code", "bad_param"),
                             error.get("message",
                                       raw.decode(errors="replace")
                                       or f"HTTP {status}"),
                             http_status=status,
                             field=error.get("field"))
        if not content_type.startswith("application/json"):
            return raw.decode()
        return json.loads(raw.decode())

    # ------------------------------------------------------------------
    # Jobs.
    # ------------------------------------------------------------------
    def submit(self, kind: str, configs: Optional[List[Dict]] = None,
               names: Optional[List[str]] = None,
               target: Optional[str] = None, fast: bool = False,
               priority: int = 0,
               timeout: Optional[float] = None) -> Dict[str, object]:
        """Submit one job; returns its status (``job_id``, ``state``)."""
        body: Dict[str, object] = {"kind": kind, "fast": fast,
                                   "priority": priority}
        if configs is not None:
            body["configs"] = configs
        if names is not None:
            body["names"] = names
        if target is not None:
            body["target"] = target
        if timeout is not None:
            body["timeout"] = timeout
        return self._request("POST", "submit", body)

    def submit_payload(self, body: Dict[str, object]) -> Dict[str, object]:
        """Submit a pre-built job-spec body verbatim (fleet forwarding)."""
        return self._request("POST", "submit", body)

    def status(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"status/{job_id}")

    def jobs(self, active: bool = False) -> List[Dict[str, object]]:
        path = "jobs?active=1" if active else "jobs"
        return self._request("GET", path)["jobs"]

    def result(self, job_id: str) -> Dict[str, object]:
        """The result payload; raises :class:`ServeError` until done."""
        return self._request("GET", f"result/{job_id}")

    def wait(self, job_id: str, poll: float = 0.05,
             timeout: Optional[float] = None) -> Dict[str, object]:
        """Poll until the job is terminal; return its result payload.

        Raises :class:`ServeError` with the job's structured code if it
        failed, was cancelled, or timed out; raises ``TimeoutError``
        if the *client-side* wait budget runs out first.
        """
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        while True:
            status = self.status(job_id)
            if status["state"] in JobState.TERMINAL:
                return self.result(job_id)
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after "
                    f"{timeout}s")
            time.sleep(poll)

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._request("POST", f"cancel/{job_id}")

    # ------------------------------------------------------------------
    # Service control and observability.
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        return self._request("GET", "healthz")

    def metrics(self) -> Dict[str, object]:
        return self._request("GET", "metrics")

    def events_jsonl(self) -> str:
        return self._request("GET", "events")

    def pause(self) -> Dict[str, object]:
        return self._request("POST", "pause")

    def resume(self) -> Dict[str, object]:
        return self._request("POST", "resume")

    def shutdown(self, drain: bool = True) -> Dict[str, object]:
        return self._request("POST", "shutdown", {"drain": drain})


def connect(url: str = "http://127.0.0.1:8350",
            timeout: float = 60.0) -> ServeClient:
    """Convenience constructor mirroring :mod:`repro.api` style."""
    client = ServeClient(url, timeout=timeout)
    health = client.healthz()
    if health.get("protocol") != PROTOCOL_VERSION:
        raise ServeError(
            "bad_param",
            f"server speaks protocol {health.get('protocol')}, client "
            f"speaks {PROTOCOL_VERSION}")
    return client
