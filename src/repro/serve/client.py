"""A blocking Python client for the evaluation service.

Stdlib only (:mod:`urllib.request`); every protocol failure surfaces as
a :class:`ServeError` carrying the structured error code, so callers
dispatch on ``exc.code`` instead of parsing prose.

>>> client = ServeClient("http://127.0.0.1:8350")
>>> job = client.submit("evaluate",
...                     configs=[{"array": "C2", "slots": 64,
...                               "speculation": True}],
...                     names=["crc"], fast=True)
>>> result = client.wait(job["job_id"])
>>> print(result["result"]["suite_json"])
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from repro.serve.protocol import PROTOCOL_VERSION, JobState


class ServeError(Exception):
    """A structured error returned by the service."""

    def __init__(self, code: str, message: str,
                 http_status: int = 400,
                 field: Optional[str] = None):
        super().__init__(message)
        self.code = code
        self.http_status = http_status
        self.field = field


class ServeClient:
    """Thin blocking wrapper over the versioned JSON protocol."""

    def __init__(self, base_url: str = "http://127.0.0.1:8350",
                 timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport.
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, object]] = None) -> object:
        url = f"{self.base_url}/v1/{path}"
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            url, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as reply:
                raw = reply.read()
                if reply.headers.get_content_type() != "application/json":
                    return raw.decode()
                return json.loads(raw.decode())
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode()
            try:
                payload = json.loads(raw)
                error = payload.get("error", {})
            except json.JSONDecodeError:
                error = {}
            raise ServeError(error.get("code", "bad_param"),
                             error.get("message", raw or str(exc)),
                             http_status=exc.code,
                             field=error.get("field")) from None

    # ------------------------------------------------------------------
    # Jobs.
    # ------------------------------------------------------------------
    def submit(self, kind: str, configs: Optional[List[Dict]] = None,
               names: Optional[List[str]] = None,
               target: Optional[str] = None, fast: bool = False,
               priority: int = 0,
               timeout: Optional[float] = None) -> Dict[str, object]:
        """Submit one job; returns its status (``job_id``, ``state``)."""
        body: Dict[str, object] = {"kind": kind, "fast": fast,
                                   "priority": priority}
        if configs is not None:
            body["configs"] = configs
        if names is not None:
            body["names"] = names
        if target is not None:
            body["target"] = target
        if timeout is not None:
            body["timeout"] = timeout
        return self._request("POST", "submit", body)

    def status(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"status/{job_id}")

    def jobs(self) -> List[Dict[str, object]]:
        return self._request("GET", "jobs")["jobs"]

    def result(self, job_id: str) -> Dict[str, object]:
        """The result payload; raises :class:`ServeError` until done."""
        return self._request("GET", f"result/{job_id}")

    def wait(self, job_id: str, poll: float = 0.05,
             timeout: Optional[float] = None) -> Dict[str, object]:
        """Poll until the job is terminal; return its result payload.

        Raises :class:`ServeError` with the job's structured code if it
        failed, was cancelled, or timed out; raises ``TimeoutError``
        if the *client-side* wait budget runs out first.
        """
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        while True:
            status = self.status(job_id)
            if status["state"] in JobState.TERMINAL:
                return self.result(job_id)
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after "
                    f"{timeout}s")
            time.sleep(poll)

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._request("POST", f"cancel/{job_id}")

    # ------------------------------------------------------------------
    # Service control and observability.
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        return self._request("GET", "healthz")

    def metrics(self) -> Dict[str, object]:
        return self._request("GET", "metrics")

    def events_jsonl(self) -> str:
        return self._request("GET", "events")

    def pause(self) -> Dict[str, object]:
        return self._request("POST", "pause")

    def resume(self) -> Dict[str, object]:
        return self._request("POST", "resume")

    def shutdown(self, drain: bool = True) -> Dict[str, object]:
        return self._request("POST", "shutdown", {"drain": drain})


def connect(url: str = "http://127.0.0.1:8350",
            timeout: float = 60.0) -> ServeClient:
    """Convenience constructor mirroring :mod:`repro.api` style."""
    client = ServeClient(url, timeout=timeout)
    health = client.healthz()
    if health.get("protocol") != PROTOCOL_VERSION:
        raise ServeError(
            "bad_param",
            f"server speaks protocol {health.get('protocol')}, client "
            f"speaks {PROTOCOL_VERSION}")
    return client
