"""The batch coalescer and its warm workers.

The scheduler turns the job queue into *batches*: every claim takes the
best pending job plus all pending jobs that share its workload
fingerprint (same workload names, same simulator path), so the whole
group is served by **one** call into the matrix replay engine —
one trace per workload, one :class:`~repro.dim.memo.TranslationMemo`
shared across every configuration in the batch
(:func:`repro.system.sweep.evaluate_matrix`).  Fifty submitted
``evaluate`` jobs that differ only in configuration cost one sweep, not
fifty suites; that is the whole point of the service.

Execution happens on *warm workers*:

- ``workers == 0`` — the batch runs on a dedicated *single-thread*
  executor, inside the server process, sharing its in-memory trace
  caches.  This is the mode tests and single-tenant use want.  One
  thread is load-bearing for correctness, not a tuning choice: the
  replay engine's per-workload caches (shared columnar contexts,
  translation timelines) are lock-free mutable state, and two batches
  of one workload walking the same cold translation timeline
  concurrently race on its probe bookkeeping and return subtly wrong
  metrics — third-decimal geomean drift, identical across every cell
  of the batch.  The byte-identity differential tests catch exactly
  this.
- ``workers >= 1`` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  created once at service start.  Workers live across batches, so their
  ``repro.workloads`` trace caches stay warm, and every worker pins the
  same resolved artifact-cache directory (``REPRO_CACHE_DIR``) so disk
  artifacts are shared between workers and across restarts.

A batch that raises (worker crash, poisoned input) is retried per job
with exponential backoff via :meth:`JobManager.retry_later`; a broken
process pool is rebuilt before the retry lands.  Everything the
scheduler observes — batch widths, queue depth at dispatch, per-job
latency, retry counts, worker cache hit-rates — flows through the
``serve.*`` / ``sweep.*`` namespaces of :mod:`repro.obs`.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import (BrokenExecutor, Executor,
                                ProcessPoolExecutor, ThreadPoolExecutor)
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs import Telemetry
from repro.serve.protocol import ConfigSpec, JobState
from repro.serve.queue import Job, JobManager, ServeStats

#: a picklable description of one batch, consumed by :func:`run_batch`.
BatchSpec = Dict[str, object]


# ----------------------------------------------------------------------
# Worker side (runs in a pool process or the inline thread executor).
# ----------------------------------------------------------------------
def _init_worker(cache_root: Optional[str]) -> None:
    """Pool initializer: pin the artifact cache for the worker's life.

    The service resolves ``REPRO_CACHE_DIR`` once at startup; exporting
    the resolved path here means any library code that falls back to
    the default cache location agrees with the batch specs it receives.
    """
    if cache_root is not None:
        os.environ["REPRO_CACHE_DIR"] = cache_root


def _build_configs(specs: Sequence[ConfigSpec]):
    from repro.serve.protocol import system_spec

    return [system_spec(spec).build() for spec in specs]


def run_batch(spec: BatchSpec) -> Dict[str, object]:
    """Execute one coalesced batch; pure function of its spec.

    Returns ``{"results": {job_id: payload}, "counters": {...}}`` where
    every payload is built from the same code paths the offline
    :mod:`repro.api` verbs use, so service results are byte-identical
    to offline calls (the differential tests enforce this).
    """
    from repro.system.artifacts import ArtifactCache
    from repro.system.sweep import evaluate_matrix, matrix_slice

    cache_root = spec.get("cache_root")
    cache = (ArtifactCache(Path(cache_root),
                           scope=spec.get("cache_scope"))
             if cache_root else None)
    fast = bool(spec["fast"])
    results: Dict[str, object] = {}
    counters: Dict[str, int] = {}

    if spec["mode"] == "run":
        from repro.api import run

        for job_spec in spec["jobs"]:
            config = _build_configs(job_spec["configs"])[0]
            comparison = run(spec["target"], config=config, fast=fast)
            results[job_spec["id"]] = {
                "kind": "run",
                "target": spec["target"],
                "system": config.name,
                "speedup": comparison.speedup,
                "energy_ratio": comparison.energy_ratio,
                "plain_cycles": comparison.plain.stats.cycles,
                "accelerated_cycles":
                    comparison.accelerated.stats.cycles,
            }
        return {"results": results, "counters": counters}

    # matrix mode: one evaluate_matrix over the union of every job's
    # configurations serves the whole batch.
    names = spec["names"]
    union, seen = [], set()
    for job_spec in spec["jobs"]:
        for config in _build_configs(job_spec["configs"]):
            if config.name not in seen:
                seen.add(config.name)
                union.append(config)
    matrix = evaluate_matrix(union, names=names, fast=fast, cache=cache)
    for job_spec in spec["jobs"]:
        configs = _build_configs(job_spec["configs"])
        if job_spec["kind"] == "evaluate":
            suite = matrix.suite(configs[0].name)
            results[job_spec["id"]] = {
                "kind": "evaluate",
                "system": suite.system,
                "geomean_speedup": suite.geomean_speedup,
                "suite_json": suite.to_json(),
            }
        else:  # sweep
            sliced = matrix_slice(matrix, configs)
            results[job_spec["id"]] = {
                "kind": "sweep",
                "systems": [config.name for config in configs],
                "matrix_json": sliced.results_json(),
            }
    counters = dict(matrix.instrumentation.counters())
    return {"results": results, "counters": counters}


# ----------------------------------------------------------------------
# Scheduler (runs on the service event loop).
# ----------------------------------------------------------------------
class BatchScheduler:
    """Claims batches from the queue and runs them on warm workers."""

    def __init__(self, manager: JobManager, telemetry: Telemetry,
                 workers: int = 0,
                 cache_root: Optional[Path] = None,
                 batch_window: float = 0.02,
                 scoped_cache: bool = False,
                 runner: Callable[[BatchSpec], Dict[str, object]]
                 = run_batch):
        self.manager = manager
        self.telemetry = telemetry
        self.workers = workers
        self.cache_root = (str(cache_root) if cache_root is not None
                           else None)
        #: fleet mode: scope artifact writes per workload fingerprint
        #: so shards sharing one REPRO_CACHE_DIR never contend on the
        #: same directories.
        self.scoped_cache = scoped_cache
        self.batch_window = batch_window
        self.runner = runner
        self._pool: Optional[Executor] = None
        self._task: Optional[asyncio.Task] = None
        self._inflight: set = set()

    @property
    def stats(self) -> ServeStats:
        return self.manager.stats

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._pool = self._make_pool()
        self._task = asyncio.get_running_loop().create_task(
            self._claim_loop())

    def _make_pool(self) -> Executor:
        if self.workers > 0:
            return ProcessPoolExecutor(
                max_workers=self.workers, initializer=_init_worker,
                initargs=(self.cache_root,))
        # in-process mode MUST be a single thread: concurrent batches
        # would race on the replay engine's shared per-workload caches
        # (see the module docstring).  Never hand batches to the
        # loop's default multi-thread executor.
        return ThreadPoolExecutor(max_workers=1,
                                  thread_name_prefix="repro-batch")

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        if self._inflight:
            await asyncio.gather(*self._inflight,
                                 return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    async def wait_idle(self, poll: float = 0.01) -> None:
        while self._inflight or self.manager.depth:
            await asyncio.sleep(poll)

    # ------------------------------------------------------------------
    # The claim/dispatch loop.
    # ------------------------------------------------------------------
    async def _claim_loop(self) -> None:
        while True:
            batch = await self.manager.claim_batch(self.batch_window)
            if not batch:
                continue
            task = asyncio.get_running_loop().create_task(
                self._dispatch(batch))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    def _batch_spec(self, batch: List[Job]) -> BatchSpec:
        lead = batch[0].request
        spec: BatchSpec = {
            "mode": "run" if lead.kind == "run" else "matrix",
            "fast": lead.fast,
            "cache_root": self.cache_root,
            "cache_scope": (lead.fingerprint if self.scoped_cache
                            and self.cache_root else None),
            "jobs": [{"id": job.id, "kind": job.request.kind,
                      "configs": list(job.request.configs)}
                     for job in batch],
        }
        if lead.kind == "run":
            spec["target"] = lead.target
        else:
            spec["names"] = (list(lead.names)
                             if lead.names is not None else None)
        return spec

    async def _dispatch(self, batch: List[Job]) -> None:
        loop = asyncio.get_running_loop()
        spec = self._batch_spec(batch)
        fingerprint = batch[0].request.fingerprint
        if self.telemetry.enabled:
            self.telemetry.emit("serve.batch_dispatched",
                                fingerprint=fingerprint,
                                width=len(batch),
                                queue_depth=self.manager.depth)
        start = loop.time()
        try:
            payload = await loop.run_in_executor(
                self._pool, self.runner, spec)
        except (asyncio.CancelledError, GeneratorExit):
            # cancellation, or the loop died under us (crash-stop
            # kill() closes it with this dispatch still pending and
            # GeneratorExit arrives at collection time): the batch is
            # orphaned — do NOT run retry bookkeeping, there is no
            # loop left to run it on.
            raise
        except BaseException as exc:  # worker crash or poisoned batch
            self.stats.exec_seconds += loop.time() - start
            if isinstance(exc, BrokenExecutor) and self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = self._make_pool()
            for job in batch:
                retried = await self.manager.retry_later(job)
                if not retried:
                    self.manager.fail(
                        job, f"{type(exc).__name__}: {exc}")
                if job.state in JobState.TERMINAL:
                    self._emit_finished(job)
                elif self.telemetry.enabled:
                    self.telemetry.emit("serve.job_retried",
                                        job_id=job.id,
                                        attempts=job.attempts)
            return
        self.stats.exec_seconds += loop.time() - start
        results = payload.get("results", {})
        self.telemetry.count_many(payload.get("counters", {}))
        for job in batch:
            result = results.get(job.id)
            if result is None:
                self.manager.fail(job, "worker returned no result "
                                       "for this job")
            else:
                self.manager.finish(job, result)
            self._emit_finished(job)

    def _emit_finished(self, job: Job) -> None:
        if not self.telemetry.enabled:
            return
        latency = (job.finished_at or 0.0) - job.submitted_at
        self.telemetry.emit("serve.job_finished", job_id=job.id,
                            state=job.state, attempts=job.attempts,
                            batch_width=job.batch_width,
                            latency_seconds=latency)
