"""The long-lived evaluation service and its stdlib HTTP front end.

:class:`EvalService` owns the event loop (run on a dedicated daemon
thread), the :class:`~repro.serve.queue.JobManager`, the
:class:`~repro.serve.scheduler.BatchScheduler` and the service
telemetry; its public methods are thread-safe bridges that the HTTP
handlers (and tests) call from any thread.

:class:`ServeHTTPServer` is a plain
:class:`http.server.ThreadingHTTPServer` — no third-party dependency —
that maps the versioned JSON protocol (:mod:`repro.serve.protocol`)
onto the service.  :func:`serve_forever` is the CLI entry point.
"""

from __future__ import annotations

import asyncio
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs import SCHEMA_VERSION, Telemetry
from repro.obs.schema import serve_counters, serve_timers
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    JobState,
    ProtocolError,
    dumps,
    loads,
    validate_submission,
)
from repro.serve.queue import JobManager, ServeStats
from repro.serve.scheduler import BatchScheduler, run_batch

#: ceiling on any one thread-safe bridge call into the loop.
_BRIDGE_TIMEOUT = 60.0


class EvalService:
    """Queue + scheduler + telemetry behind a thread-safe facade."""

    def __init__(self, workers: int = 0,
                 cache_root: Optional[Path] = None,
                 capacity: int = 256, max_retries: int = 2,
                 backoff_base: float = 0.05,
                 batch_window: float = 0.02,
                 scoped_cache: bool = False,
                 telemetry: Optional[Telemetry] = None,
                 runner=run_batch):
        self.telemetry = (telemetry if telemetry is not None
                          else Telemetry())
        self.stats = ServeStats()
        self.manager = JobManager(capacity=capacity,
                                  max_retries=max_retries,
                                  backoff_base=backoff_base,
                                  stats=self.stats)
        self.scheduler = BatchScheduler(
            self.manager, self.telemetry, workers=workers,
            cache_root=cache_root, batch_window=batch_window,
            scoped_cache=scoped_cache, runner=runner)
        self.cache_root = cache_root
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._stopped = False

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> "EvalService":
        assert self._thread is None, "service already started"
        self._thread = threading.Thread(target=self._run_loop,
                                        name="repro-serve-loop",
                                        daemon=True)
        self._thread.start()
        self._started.wait(_BRIDGE_TIMEOUT)
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def boot():
            self.manager.bind()
            self.scheduler.start()
            self._started.set()

        loop.create_task(boot())
        try:
            loop.run_forever()
        finally:
            loop.close()

    def stop(self, drain: bool = True,
             timeout: float = _BRIDGE_TIMEOUT) -> Dict[str, object]:
        """Stop the service; with ``drain`` (the default) refuse new
        submissions and wait for every queued job to reach a terminal
        state first, so a clean shutdown never strands work."""
        if self._stopped:
            return {"drained": True, "active": 0}
        summary = self._call(self._shutdown(drain), timeout=timeout)
        loop, self._loop = self._loop, None
        loop.call_soon_threadsafe(loop.stop)
        self._thread.join(timeout)
        self._stopped = True
        return summary

    def kill(self) -> None:
        """Crash-stop the service: drop the request bridge and stop the
        loop WITHOUT draining or waiting for in-flight batches.

        This models a worker dying mid-batch (the SIGKILL analogue of
        :meth:`stop`): every request from the moment of the call fails —
        including ones arriving over already-established keep-alive
        connections, which a bare ``HTTPServer.shutdown()`` keeps
        serving — so a fleet coordinator's heartbeat sees the worker go
        dark immediately instead of after in-flight work unwinds.  Any
        batch still running on the executor is orphaned: its result is
        never recorded and never observable.  Used by failover tests.
        """
        if self._stopped or self._loop is None:
            return
        loop, self._loop = self._loop, None
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._stopped = True

    async def _shutdown(self, drain: bool) -> Dict[str, object]:
        self.manager.stop_accepting()
        if drain:
            await self.manager.resume()  # a paused queue cannot drain
            await self.manager.wait_drained()
            await self.scheduler.wait_idle()
        await self.scheduler.stop()
        return {"drained": drain, "active": self.manager.active,
                "jobs": len(self.manager.jobs)}

    # ------------------------------------------------------------------
    # The thread-safe bridge.
    # ------------------------------------------------------------------
    def _call(self, coro, timeout: float = _BRIDGE_TIMEOUT):
        if self._loop is None:
            coro.close()  # never scheduled; avoid the unawaited warning
            raise RuntimeError("service not started")
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout)

    def submit(self, payload: object) -> Dict[str, object]:
        """Validate and enqueue one job spec; returns its status."""
        request = validate_submission(payload)
        return self._call(self._submit(request))

    async def _submit(self, request) -> Dict[str, object]:
        job = await self.manager.submit(request)
        if self.telemetry.enabled:
            self.telemetry.emit("serve.job_submitted", job_id=job.id,
                                kind=request.kind,
                                fingerprint=request.fingerprint,
                                queue_depth=self.manager.depth)
        return job.status()

    def status(self, job_id: str) -> Dict[str, object]:
        return self._call(self._status(job_id))

    async def _status(self, job_id: str) -> Dict[str, object]:
        return self.manager.job(job_id).status()

    def jobs(self) -> List[Dict[str, object]]:
        return self._call(self._jobs())

    async def _jobs(self) -> List[Dict[str, object]]:
        return [job.status() for _, job in
                sorted(self.manager.jobs.items())]

    def result(self, job_id: str, wait: bool = False,
               timeout: float = _BRIDGE_TIMEOUT) -> Dict[str, object]:
        """A finished job's result payload.

        Raises :class:`ProtocolError` (``not_finished`` /
        ``job_failed`` / ``job_cancelled`` / ``job_timeout``) when no
        result exists; ``wait`` blocks until the job is terminal.
        """
        return self._call(self._result(job_id, wait), timeout=timeout)

    async def _result(self, job_id: str,
                      wait: bool) -> Dict[str, object]:
        job = self.manager.job(job_id)
        if wait:
            await self.manager.wait_job(job)
        if job.state == JobState.DONE:
            return {"job_id": job.id, "state": job.state,
                    "result": job.result}
        code = {JobState.FAILED: "job_failed",
                JobState.CANCELLED: "job_cancelled",
                JobState.TIMEOUT: "job_timeout"}.get(job.state,
                                                     "not_finished")
        status = 409 if code == "not_finished" else 410
        message = (job.error or {}).get("message", job.state)
        raise ProtocolError(code, f"job {job.id} is {job.state}: "
                                  f"{message}", http_status=status)

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._call(self._cancel(job_id))

    async def _cancel(self, job_id: str) -> Dict[str, object]:
        job = await self.manager.cancel(job_id)
        return job.status()

    def pause(self) -> None:
        self._call(self.manager.pause())

    def resume(self) -> None:
        self._call(self.manager.resume())

    def wait_drained(self, timeout: float = _BRIDGE_TIMEOUT) -> None:
        self._call(self.manager.wait_drained(), timeout=timeout)

    # ------------------------------------------------------------------
    # Observability.
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "queue_depth": self.manager.depth,
            "active_jobs": self.manager.active,
            "paused": self.manager.paused,
            "workers": self.scheduler.workers,
        }

    def metrics(self) -> Dict[str, object]:
        """Counters and timers: the service's ``serve.*`` stats merged
        over the telemetry absorbed from workers (``sweep.*`` etc.).

        Routed through the event loop while the service runs so the
        export never races ongoing instrumentation.
        """
        if self._loop is not None and not self._stopped:
            return self._call(self._on_loop(self._build_metrics))
        return self._build_metrics()

    async def _on_loop(self, fn):
        return fn()

    def _build_metrics(self) -> Dict[str, object]:
        counters = dict(self.telemetry.counters)
        counters.update(serve_counters(self.stats))
        timers = dict(self.telemetry.timers)
        timers.update(serve_timers(self.stats))
        return {
            "schema_version": SCHEMA_VERSION,
            "protocol": PROTOCOL_VERSION,
            "counters": dict(sorted(counters.items())),
            "timers": dict(sorted(timers.items())),
            "events": self.telemetry.meta_record(),
            "mean_batch_width": self.stats.mean_batch_width,
        }

    def events_jsonl(self) -> str:
        """The telemetry event stream as schema-valid JSONL text."""
        if self._loop is not None and not self._stopped:
            return self._call(self._on_loop(self._build_events_jsonl))
        return self._build_events_jsonl()

    def _build_events_jsonl(self) -> str:
        lines = [json.dumps(self.telemetry.meta_record(),
                            sort_keys=True)]
        if self.telemetry.events is not None:
            lines.extend(json.dumps(record, sort_keys=True)
                         for record in self.telemetry.events)
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# HTTP front end.
# ----------------------------------------------------------------------
class ServeHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer wired to one :class:`EvalService`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: EvalService):
        super().__init__(address, _Handler)
        self.service = service
        #: set by the shutdown route; serve_forever exits on it.
        self.shutdown_requested = threading.Event()


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    # replies are one buffered write; Nagle would otherwise delay
    # them behind the client's delayed ACK on keep-alive sockets.
    disable_nagle_algorithm = True
    server: ServeHTTPServer

    # quiet: the service has telemetry, stderr chatter is noise.
    def log_message(self, format, *args):  # noqa: A002
        pass

    # ------------------------------------------------------------------
    def _reply(self, payload: Dict[str, object],
               status: int = 200) -> None:
        body = dumps(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_text(self, text: str, status: int = 200) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_error(self, exc: ProtocolError) -> None:
        self._reply(exc.as_dict(), status=exc.http_status)

    def _body(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        return loads(self.rfile.read(length) if length else b"")

    def _route(self) -> Tuple[str, Optional[str]]:
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts and parts[0] == "v1":
            parts = parts[1:]
        if not parts:
            raise ProtocolError("not_found", "no route", http_status=404)
        head = parts[0]
        arg = parts[1] if len(parts) > 1 else None
        return head, arg

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802
        service = self.server.service
        try:
            head, arg = self._route()
            if head == "healthz":
                self._reply(service.healthz())
            elif head == "metrics":
                self._reply(service.metrics())
            elif head == "events":
                self._reply_text(service.events_jsonl())
            elif head == "jobs" and arg is None:
                query = (self.path.split("?") + [""])[1]
                jobs = service.jobs()
                if "active=1" in query:
                    jobs = [job for job in jobs
                            if job["state"] not in JobState.TERMINAL]
                self._reply({"jobs": jobs,
                             "protocol": PROTOCOL_VERSION})
            elif head == "status" and arg:
                self._reply(service.status(arg))
            elif head == "result" and arg:
                wait = "wait=1" in (self.path.split("?") + [""])[1]
                self._reply(service.result(arg, wait=wait))
            else:
                raise ProtocolError("not_found",
                                    f"no route {self.path!r}",
                                    http_status=404)
        except ProtocolError as exc:
            self._reply_error(exc)

    def do_POST(self) -> None:  # noqa: N802
        service = self.server.service
        try:
            head, arg = self._route()
            if head == "submit":
                self._reply(service.submit(self._body()), status=202)
            elif head == "cancel" and arg:
                self._reply(service.cancel(arg))
            elif head == "pause":
                service.pause()
                self._reply(service.healthz())
            elif head == "resume":
                service.resume()
                self._reply(service.healthz())
            elif head == "shutdown":
                body = self._body()
                drain = (isinstance(body, dict)
                         and bool(body.get("drain", True))) or body == {}
                summary = service.stop(drain=bool(drain))
                summary["protocol"] = PROTOCOL_VERSION
                self._reply(summary)
                self.server.shutdown_requested.set()
            else:
                raise ProtocolError("not_found",
                                    f"no route {self.path!r}",
                                    http_status=404)
        except ProtocolError as exc:
            self._reply_error(exc)


def start_http(service: EvalService, host: str = "127.0.0.1",
               port: int = 0) -> Tuple[ServeHTTPServer, threading.Thread]:
    """Start the HTTP front end on a background thread.

    Returns the server (``server.server_address`` carries the bound
    port when ``port=0``) and its thread; used by tests, benches and
    the CLI's foreground loop.
    """
    server = ServeHTTPServer((host, port), service)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-serve-http", daemon=True)
    thread.start()
    return server, thread


def serve_forever(host: str = "127.0.0.1", port: int = 8350,
                  **service_kwargs) -> int:
    """Run the service until interrupted or shut down over HTTP."""
    service = EvalService(**service_kwargs).start()
    server, thread = start_http(service, host, port)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro serve: listening on http://{bound_host}:{bound_port} "
          f"(workers={service.scheduler.workers}, "
          f"cache={service.cache_root or 'disabled'})")
    try:
        server.shutdown_requested.wait()
    except KeyboardInterrupt:
        print("\nrepro serve: draining ...")
        service.stop(drain=True)
    server.shutdown()
    thread.join(5.0)
    return 0
