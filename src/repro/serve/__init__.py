"""``repro.serve`` — the persistent evaluation service.

Every ``repro run``/``evaluate``/``sweep`` invocation used to be a cold
process that rebuilt traces, memos and caches it would immediately
throw away.  This package keeps them alive behind a long-lived service:

- :mod:`repro.serve.queue` — an asyncio job manager: bounded priority
  queue, per-job deadlines, cancellation, retry-with-backoff.
- :mod:`repro.serve.scheduler` — the batch coalescer: pending jobs that
  share a workload fingerprint are served by **one** matrix replay
  (one trace + one translation memo per workload), on warm workers
  that pin the persistent artifact cache.
- :mod:`repro.serve.protocol` — the versioned JSON protocol with
  structured errors.
- :mod:`repro.serve.server` — :class:`EvalService` plus a stdlib HTTP
  front end (``submit``/``status``/``result``/``cancel``/``healthz``/
  ``metrics``).
- :mod:`repro.serve.client` — the blocking :class:`ServeClient`.

Service results are byte-identical to the offline :mod:`repro.api`
calls for the same inputs; ``tests/test_serve.py`` enforces this
differentially.  CLI: ``repro serve`` / ``repro submit`` /
``repro jobs``.
"""

from repro.serve.client import ServeClient, ServeError, connect
from repro.serve.protocol import (
    JOB_KINDS,
    PROTOCOL_VERSION,
    JobRequest,
    JobState,
    ProtocolError,
    validate_submission,
)
from repro.serve.queue import Job, JobManager, ServeStats
from repro.serve.scheduler import BatchScheduler, run_batch
from repro.serve.server import (
    EvalService,
    ServeHTTPServer,
    serve_forever,
    start_http,
)

__all__ = [
    "JOB_KINDS",
    "PROTOCOL_VERSION",
    "Job",
    "JobManager",
    "JobRequest",
    "JobState",
    "ProtocolError",
    "ServeStats",
    "BatchScheduler",
    "run_batch",
    "EvalService",
    "ServeHTTPServer",
    "serve_forever",
    "start_http",
    "ServeClient",
    "ServeError",
    "connect",
    "validate_submission",
]
