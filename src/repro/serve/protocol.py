"""The versioned JSON protocol of the evaluation service.

Every request and response on the wire is one flat JSON object; this
module is the single place their shapes are defined and validated, so
the HTTP server (:mod:`repro.serve.server`), the blocking client
(:mod:`repro.serve.client`) and the job manager
(:mod:`repro.serve.queue`) all agree by construction.

Protocol sketch (all paths under ``/v1/``):

=========  ======================  =====================================
method     path                    body / reply
=========  ======================  =====================================
POST       ``submit``              job spec -> ``{"job_id", "state"}``
GET        ``status/<id>``         -> job status object
GET        ``jobs``                -> ``{"jobs": [status, ...]}``
GET        ``result/<id>``         -> result payload (409 until done)
POST       ``cancel/<id>``         -> job status object
GET        ``healthz``             -> liveness + queue depth
GET        ``metrics``             -> telemetry counters/timers
GET        ``events``              -> JSONL telemetry event stream
POST       ``pause`` / ``resume``  -> scheduler gate (tests, benches)
POST       ``shutdown``            ``{"drain": bool}`` -> final stats
=========  ======================  =====================================

A *job spec* is::

    {"kind": "run" | "evaluate" | "sweep",
     "target": <workload|path>,          # run only
     "configs": [{"array": "C2", "slots": 64,
                  "speculation": true}, ...],
     "names": ["crc", ...] | null,       # evaluate/sweep workload subset
     "fast": bool, "priority": int, "timeout": seconds | null}

A config object names either a Table 1 array (``"array"``) or — for
design-space exploration clients (:mod:`repro.dse`) — an arbitrary
geometry plus optional DIM policy overrides::

    {"shape": {"rows": 32, "alus_per_row": 8, "mults_per_row": 2,
               "ldsts_per_row": 4, ...},   # ArrayShape fields
     "slots": 64, "speculation": true,
     "dim": {"cache_policy": "lru", ...}}  # non-default DimParams extras

``"array"`` and ``"shape"`` are mutually exclusive.  Adding the shape
form is backward-compatible (old clients never send it), so the
protocol version stays at 1.

Failures are *structured errors*::

    {"error": {"code": "<machine code>", "message": "...",
               "field": "<offending field>"}, "protocol": 1}

The ``code`` vocabulary is closed (:data:`ERROR_CODES`) so clients can
dispatch on it without parsing prose.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cgra.shape import ArrayShape, default_immediate_slots
from repro.dim.params import DimParams
from repro.system.config import PAPER_SHAPES
from repro.workloads import workload_names

#: bump when a request/response shape changes incompatibly.
PROTOCOL_VERSION = 1

#: the three job kinds, mirroring the ``repro.api`` verbs.
JOB_KINDS = ("run", "evaluate", "sweep")

#: closed vocabulary of structured-error codes.
ERROR_CODES = frozenset({
    "bad_json",          # request body is not a JSON object
    "bad_param",         # a field has the wrong type or value
    "unknown_kind",      # job kind outside JOB_KINDS
    "unknown_workload",  # a name not in the benchmark suite
    "unknown_array",     # an array name outside Table 1
    "queue_full",        # the bounded queue rejected the submission
    "unknown_job",       # no job with that id
    "not_finished",      # result requested before a terminal state
    "job_failed",        # result requested for a failed job
    "job_cancelled",     # result requested for a cancelled job
    "job_timeout",       # result requested for a deadline-expired job
    "shutting_down",     # submission during drain
    "not_found",         # unroutable path
    # fleet coordinator (repro.fleet) additions; same closed vocabulary
    # so ServeClient error dispatch works unchanged against a fleet.
    "fleet_saturated",   # load shed: the fleet's in-flight cap is hit
    "no_workers",        # no live worker shard can take the job
    "unknown_worker",    # heartbeat/deregister for an unknown worker id
})


class JobState:
    """The job lifecycle; terminal states never change again."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"

    TERMINAL = frozenset({DONE, FAILED, CANCELLED, TIMEOUT})
    ALL = frozenset({PENDING, RUNNING, DONE, FAILED, CANCELLED, TIMEOUT})


class ProtocolError(Exception):
    """A structured, machine-dispatchable protocol failure."""

    def __init__(self, code: str, message: str,
                 field_name: Optional[str] = None,
                 http_status: int = 400):
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code
        self.field = field_name
        self.http_status = http_status

    def as_dict(self) -> Dict[str, object]:
        error: Dict[str, object] = {"code": self.code,
                                    "message": str(self)}
        if self.field is not None:
            error["field"] = self.field
        return {"error": error, "protocol": PROTOCOL_VERSION}


#: one system configuration, normalised: ``(first, slots, speculation)``
#: where ``first`` is a Table 1 array name, or — for custom geometries —
#: the nested tuple ``("shape", <ArrayShape field values in declaration
#: order>, <sorted (DimParams extra, value) pairs>)``.  Keeping the
#: 3-tuple arity means paper-array specs are unchanged on old clients
#: and servers.
ConfigSpec = Tuple[object, int, bool]

#: ArrayShape field names, in declaration order — the layout of the
#: nested shape tuple above and the key set of the wire's ``"shape"``
#: object.
SHAPE_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(ArrayShape))

#: the four fields a wire shape object must always carry.
REQUIRED_SHAPE_FIELDS = ("rows", "alus_per_row", "mults_per_row",
                         "ldsts_per_row")

#: DimParams fields an explicit ``"dim"`` extras object may override
#: (slots and speculation have their own top-level wire fields).
DIM_EXTRA_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(DimParams)
    if f.name not in ("cache_slots", "speculation"))


@dataclass(frozen=True)
class JobRequest:
    """A validated, normalised job submission."""

    kind: str
    configs: Tuple[ConfigSpec, ...] = ()
    names: Optional[Tuple[str, ...]] = None
    target: Optional[str] = None
    fast: bool = False
    priority: int = 0
    timeout: Optional[float] = None

    @property
    def fingerprint(self) -> str:
        """The batch-coalescing key: jobs with equal fingerprints can
        share one trace and one translation memo.

        ``evaluate``/``sweep`` jobs replay the same workload traces
        whenever (names, fast) agree — their configurations may differ
        freely, that is exactly what the matrix replay shares.  ``run``
        jobs re-execute the coupled system, so they only share the
        plain-run cache of one target.
        """
        if self.kind == "run":
            identity = ("run", self.target, self.fast)
        else:
            names = self.names if self.names is not None \
                else tuple(workload_names())
            identity = ("matrix", names, self.fast)
        digest = hashlib.sha256(repr(identity).encode())
        return digest.hexdigest()[:16]

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "kind": self.kind,
            "configs": [config_spec_dict(spec)
                        for spec in self.configs],
            "fast": self.fast,
            "priority": self.priority,
            "timeout": self.timeout,
        }
        if self.names is not None:
            payload["names"] = list(self.names)
        if self.target is not None:
            payload["target"] = self.target
        return payload


# ----------------------------------------------------------------------
# Validation.
# ----------------------------------------------------------------------
def _require(condition: bool, code: str, message: str,
             field_name: Optional[str] = None) -> None:
    if not condition:
        raise ProtocolError(code, message, field_name)


def _validate_shape(raw: object, field_name: str) -> Tuple[int, ...]:
    """Check a wire shape object; return ArrayShape field values in
    declaration order (immediate slots defaulted by convention)."""
    _require(isinstance(raw, Mapping), "bad_param",
             f"{field_name}.shape must be an object", field_name)
    unknown = set(raw) - set(SHAPE_FIELDS)
    _require(not unknown, "bad_param",
             f"{field_name}.shape has unknown fields: "
             f"{sorted(unknown)}", field_name)
    missing = [name for name in REQUIRED_SHAPE_FIELDS if name not in raw]
    _require(not missing, "bad_param",
             f"{field_name}.shape is missing {', '.join(missing)}",
             field_name)
    values: Dict[str, int] = {}
    for name in SHAPE_FIELDS:
        if name not in raw:
            continue
        value = raw[name]
        _require(isinstance(value, int) and not isinstance(value, bool)
                 and value > 0, "bad_param",
                 f"{field_name}.shape.{name} must be a positive "
                 f"integer", field_name)
        values[name] = value
    shape = ArrayShape(**values) if "immediate_slots" in values else \
        ArrayShape(**values, immediate_slots=default_immediate_slots(
            values["rows"]))
    return tuple(getattr(shape, name) for name in SHAPE_FIELDS)


def _validate_dim_extras(raw: object, field_name: str
                         ) -> Tuple[Tuple[str, object], ...]:
    """Check a wire ``dim`` extras object; return sorted (name, value)
    pairs, type-checked against the DimParams field defaults."""
    _require(isinstance(raw, Mapping), "bad_param",
             f"{field_name}.dim must be an object", field_name)
    unknown = set(raw) - set(DIM_EXTRA_FIELDS)
    _require(not unknown, "bad_param",
             f"{field_name}.dim has unknown fields: {sorted(unknown)} "
             f"(slots/speculation are top-level)", field_name)
    defaults = DimParams()
    extras: List[Tuple[str, object]] = []
    for name in sorted(raw):
        value = raw[name]
        expected = type(getattr(defaults, name))
        ok = isinstance(value, expected) and (
            expected is not int or not isinstance(value, bool))
        _require(ok, "bad_param",
                 f"{field_name}.dim.{name} must be "
                 f"{expected.__name__}", field_name)
        extras.append((name, value))
    return tuple(extras)


def _validate_config(entry: object, index: int) -> ConfigSpec:
    field_name = f"configs[{index}]"
    _require(isinstance(entry, Mapping), "bad_param",
             f"{field_name} must be an object", field_name)
    _require(not ("array" in entry and "shape" in entry), "bad_param",
             f"{field_name} names both an array and a shape; they are "
             f"mutually exclusive", field_name)
    slots = entry.get("slots", 64)
    _require(isinstance(slots, int) and not isinstance(slots, bool)
             and slots > 0, "bad_param",
             f"{field_name}.slots must be a positive integer",
             field_name)
    speculation = entry.get("speculation", False)
    _require(isinstance(speculation, bool), "bad_param",
             f"{field_name}.speculation must be a boolean", field_name)

    if "shape" in entry:
        unknown = set(entry) - {"shape", "slots", "speculation", "dim"}
        _require(not unknown, "bad_param",
                 f"{field_name} has unknown fields: {sorted(unknown)}",
                 field_name)
        shape = _validate_shape(entry["shape"], field_name)
        extras = _validate_dim_extras(entry.get("dim", {}), field_name)
        return (("shape", shape, extras), slots, speculation)

    array = entry.get("array", "C3")
    _require(isinstance(array, str), "bad_param",
             f"{field_name}.array must be a string", field_name)
    if array not in PAPER_SHAPES:
        valid = ", ".join(sorted(PAPER_SHAPES))
        raise ProtocolError(
            "unknown_array",
            f"unknown array {array!r}: valid array names are {valid}",
            field_name)
    unknown = set(entry) - {"array", "slots", "speculation"}
    _require(not unknown, "bad_param",
             f"{field_name} has unknown fields: {sorted(unknown)} "
             f"(dim extras require the shape form)", field_name)
    return (array, slots, speculation)


def config_spec_dict(spec: ConfigSpec) -> Dict[str, object]:
    """A normalised :data:`ConfigSpec` back in its wire form."""
    first, slots, speculation = spec
    if isinstance(first, str):
        return {"array": first, "slots": slots,
                "speculation": speculation}
    _, shape_values, extras = first
    payload: Dict[str, object] = {
        "shape": dict(zip(SHAPE_FIELDS, shape_values)),
        "slots": slots,
        "speculation": speculation,
    }
    if extras:
        payload["dim"] = dict(extras)
    return payload


def system_spec(spec: ConfigSpec):
    """The canonical :class:`~repro.system.config.SystemSpec` one
    normalised wire spec denotes.

    The single wire-to-system bridge: the scheduler's batch execution
    routes every config through ``system_spec(spec).build()``, so the
    wire form, the spec and the built configuration agree on the
    canonical name — exactly the one the submitting
    :class:`repro.dse.space.ParameterSpace` or
    :class:`repro.mpsoc` catalog predicts.
    """
    from repro.system.config import SystemSpec

    first, slots, speculation = spec
    if isinstance(first, str):
        return SystemSpec(array=first, slots=slots,
                          speculation=speculation)
    _, shape_values, extras = first
    shape = ArrayShape(**dict(zip(SHAPE_FIELDS, shape_values)))
    return SystemSpec(shape=shape, slots=slots, speculation=speculation,
                      dim_extras=tuple(extras))


def config_from_spec(spec: ConfigSpec):
    """Build the :class:`~repro.system.config.SystemConfig` one
    normalised spec denotes.

    .. deprecated:: 1.2
        A thin back-compat shim: new code should write
        ``system_spec(spec).build()`` (or construct a
        :class:`~repro.system.config.SystemSpec` directly from the wire
        dict with ``SystemSpec.from_dict``).
    """
    return system_spec(spec).build()


def _validate_names(raw: object) -> Optional[Tuple[str, ...]]:
    if raw is None:
        return None
    _require(isinstance(raw, Sequence) and not isinstance(raw, str),
             "bad_param", "names must be a list of workload names",
             "names")
    names: List[str] = []
    known = set(workload_names())
    for name in raw:
        _require(isinstance(name, str), "bad_param",
                 "names must be a list of strings", "names")
        if name not in known:
            raise ProtocolError(
                "unknown_workload", f"unknown workload {name!r}",
                "names")
        names.append(name)
    _require(bool(names), "bad_param", "names must not be empty",
             "names")
    return tuple(names)


def validate_submission(payload: object) -> JobRequest:
    """Validate one submit body; raises :class:`ProtocolError`.

    The returned request is fully normalised: every config is a
    ``(array, slots, speculation)`` triple, names are a tuple or None
    (meaning the whole suite), and defaults are applied.
    """
    _require(isinstance(payload, Mapping), "bad_json",
             "request body must be a JSON object")
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise ProtocolError(
            "unknown_kind",
            f"unknown job kind {kind!r}: expected one of "
            f"{', '.join(JOB_KINDS)}", "kind")

    fast = payload.get("fast", False)
    _require(isinstance(fast, bool), "bad_param",
             "fast must be a boolean", "fast")
    priority = payload.get("priority", 0)
    _require(isinstance(priority, int) and not isinstance(priority, bool),
             "bad_param", "priority must be an integer", "priority")
    timeout = payload.get("timeout")
    if timeout is not None:
        _require(isinstance(timeout, (int, float))
                 and not isinstance(timeout, bool) and timeout >= 0,
                 "bad_param", "timeout must be a non-negative number",
                 "timeout")
        timeout = float(timeout)

    names = _validate_names(payload.get("names"))
    raw_configs = payload.get("configs")
    target = payload.get("target")

    if kind == "run":
        _require(isinstance(target, str) and bool(target), "bad_param",
                 "run jobs need a target (workload name or source "
                 "path)", "target")
    else:
        _require(target is None, "bad_param",
                 f"{kind} jobs take names, not a target", "target")

    configs: Tuple[ConfigSpec, ...]
    if raw_configs is None:
        if kind == "run":
            configs = (("C3", 64, False),)
        elif kind == "evaluate":
            configs = (("C2", 64, True),)
        else:  # sweep defaults to the paper's Table 2 matrix
            configs = paper_matrix_specs()
    else:
        _require(isinstance(raw_configs, Sequence)
                 and not isinstance(raw_configs, str), "bad_param",
                 "configs must be a list of config objects", "configs")
        _require(bool(raw_configs), "bad_param",
                 "configs must not be empty", "configs")
        if kind in ("run", "evaluate"):
            _require(len(raw_configs) == 1, "bad_param",
                     f"{kind} jobs take exactly one config; use a "
                     f"sweep job for a matrix", "configs")
        configs = tuple(_validate_config(entry, index)
                        for index, entry in enumerate(raw_configs))

    unknown = set(payload) - {"kind", "configs", "names", "target",
                              "fast", "priority", "timeout"}
    _require(not unknown, "bad_param",
             f"unknown fields: {sorted(unknown)}")
    return JobRequest(kind=kind, configs=configs, names=names,
                      target=target, fast=fast, priority=priority,
                      timeout=timeout)


def paper_matrix_specs() -> Tuple[ConfigSpec, ...]:
    """The Table 2 matrix as wire-level config specs (see
    :func:`repro.system.sweep.paper_matrix`)."""
    from repro.system.config import PAPER_CACHE_SLOTS

    specs: List[ConfigSpec] = [
        (array, slots, spec)
        for array in ("C1", "C2", "C3")
        for spec in (False, True)
        for slots in PAPER_CACHE_SLOTS]
    specs += [("ideal", 64, spec) for spec in (False, True)]
    return tuple(specs)


def dumps(payload: Mapping[str, object]) -> bytes:
    """Canonical wire encoding of one response object."""
    return json.dumps(payload, sort_keys=True).encode()


def loads(body: bytes) -> object:
    try:
        return json.loads(body.decode() or "{}")
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError("bad_json", f"request body is not JSON "
                                        f"({exc})")
