"""The asyncio job manager: a bounded, prioritised, deadline-aware queue.

One :class:`JobManager` owns every job's lifecycle.  Submissions enter a
bounded priority queue (higher ``priority`` first, FIFO within a
priority); the scheduler claims *batches* — the best pending job plus
every other pending job with the same workload fingerprint — so one
trace and one translation memo serve the whole group
(:mod:`repro.serve.scheduler`).

Deadlines are cooperative: a job's deadline is checked when the
scheduler claims from the queue and again when its batch completes, so
an expired job is reported as ``timeout`` without interrupting a worker
mid-replay.  Cancellation works the same way — pending jobs cancel
immediately, running jobs have their result discarded on completion.

Worker failures (a crashed process, a poisoned batch) are retried with
exponential backoff up to ``max_retries`` times per job; beyond that
the job fails with a structured ``worker_failure`` error.

All methods are coroutines and must run on the manager's event loop;
:class:`repro.serve.server.EvalService` provides the thread-safe
bridges the HTTP handlers use.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.serve.protocol import JobRequest, JobState, ProtocolError


@dataclass
class ServeStats:
    """Service-level counters, the carrier behind ``serve.*`` telemetry.

    Latencies (submit -> terminal state) are histogrammed into fixed
    buckets so the closed counter schema (:mod:`repro.obs.schema`) can
    name every exported quantity.
    """

    jobs_submitted: int = 0
    jobs_rejected: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    jobs_cancelled: int = 0
    jobs_timed_out: int = 0
    batches: int = 0
    batched_jobs: int = 0
    max_batch_width: int = 0
    retries: int = 0
    max_queue_depth: int = 0
    latency_le_10ms: int = 0
    latency_le_100ms: int = 0
    latency_le_1s: int = 0
    latency_le_10s: int = 0
    latency_over_10s: int = 0
    #: summed job wait (submit -> claim) and batch execution time.
    queue_seconds: float = 0.0
    exec_seconds: float = 0.0

    def observe_latency(self, seconds: float) -> None:
        if seconds <= 0.010:
            self.latency_le_10ms += 1
        elif seconds <= 0.100:
            self.latency_le_100ms += 1
        elif seconds <= 1.0:
            self.latency_le_1s += 1
        elif seconds <= 10.0:
            self.latency_le_10s += 1
        else:
            self.latency_over_10s += 1

    @property
    def mean_batch_width(self) -> float:
        return self.batched_jobs / self.batches if self.batches else 0.0


@dataclass
class Job:
    """One submitted job and everything that happened to it."""

    id: str
    request: JobRequest
    seq: int
    state: str = JobState.PENDING
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    deadline: Optional[float] = None
    attempts: int = 0
    cancel_requested: bool = False
    result: Optional[Dict[str, object]] = None
    error: Optional[Dict[str, object]] = None
    #: width of the batch this job last ran in (observability only).
    batch_width: int = 0
    waiters: List[asyncio.Event] = field(default_factory=list)

    def status(self) -> Dict[str, object]:
        """The wire-level status object (JSON scalars only)."""
        payload: Dict[str, object] = {
            "job_id": self.id,
            "kind": self.request.kind,
            "state": self.state,
            "priority": self.request.priority,
            "fingerprint": self.request.fingerprint,
            "attempts": self.attempts,
            "batch_width": self.batch_width,
        }
        if self.error is not None:
            payload["error"] = dict(self.error)
        return payload

    def _wake(self) -> None:
        for event in self.waiters:
            event.set()
        self.waiters.clear()


class JobManager:
    """Bounded asyncio queue of jobs with priorities and deadlines."""

    def __init__(self, capacity: int = 256, max_retries: int = 2,
                 backoff_base: float = 0.05, stats: Optional[ServeStats]
                 = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.stats = stats if stats is not None else ServeStats()
        self.jobs: Dict[str, Job] = {}
        self._heap: List[tuple] = []  # (-priority, seq, job_id)
        self._cond: Optional[asyncio.Condition] = None
        self._seq = itertools.count(1)
        self._paused = False
        self._accepting = True
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------
    # Loop plumbing.
    # ------------------------------------------------------------------
    def bind(self) -> None:
        """Attach to the running event loop (call once, from the loop)."""
        self._loop = asyncio.get_running_loop()
        self._cond = asyncio.Condition()

    def _now(self) -> float:
        assert self._loop is not None, "JobManager.bind() not called"
        return self._loop.time()

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Pending jobs currently queued."""
        return len(self._heap)

    @property
    def active(self) -> int:
        """Jobs not yet in a terminal state (pending + running)."""
        return sum(1 for job in self.jobs.values()
                   if job.state not in JobState.TERMINAL)

    @property
    def paused(self) -> bool:
        return self._paused

    def job(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise ProtocolError("unknown_job",
                                f"no job {job_id!r}", http_status=404)
        return job

    # ------------------------------------------------------------------
    # Submission and cancellation.
    # ------------------------------------------------------------------
    async def submit(self, request: JobRequest) -> Job:
        if not self._accepting:
            self.stats.jobs_rejected += 1
            raise ProtocolError("shutting_down",
                                "service is draining; submission "
                                "rejected", http_status=503)
        if self.depth >= self.capacity:
            self.stats.jobs_rejected += 1
            raise ProtocolError(
                "queue_full",
                f"queue is full ({self.capacity} pending jobs)",
                http_status=429)
        seq = next(self._seq)
        job = Job(id=f"j{seq:06d}", request=request, seq=seq,
                  submitted_at=self._now())
        if request.timeout is not None:
            job.deadline = job.submitted_at + request.timeout
        self.jobs[job.id] = job
        self._push(job)
        self.stats.jobs_submitted += 1
        self.stats.max_queue_depth = max(self.stats.max_queue_depth,
                                         self.depth)
        async with self._cond:
            self._cond.notify_all()
        return job

    async def cancel(self, job_id: str) -> Job:
        job = self.job(job_id)
        if job.state == JobState.PENDING:
            self._heap = [entry for entry in self._heap
                          if entry[2] != job.id]
            heapq.heapify(self._heap)
            self._finalize(job, JobState.CANCELLED,
                           error={"code": "job_cancelled",
                                  "message": "cancelled while pending"})
        elif job.state == JobState.RUNNING:
            # cooperative: the batch result will be discarded on return
            job.cancel_requested = True
        return job

    # ------------------------------------------------------------------
    # Scheduler side: claiming, finishing, retrying.
    # ------------------------------------------------------------------
    async def claim_batch(self, window: float = 0.0) -> List[Job]:
        """The next batch: the best pending job plus every pending job
        sharing its fingerprint (claimed in submission order).

        Blocks until a claimable job exists and the queue is not
        paused.  ``window`` optionally sleeps once after the first job
        becomes available so near-simultaneous submissions coalesce.
        Deadline-expired pending jobs are finalised (``timeout``) and
        never returned.
        """
        async with self._cond:
            while True:
                if not self._paused:
                    self._expire_pending()
                    if self._heap:
                        break
                await self._cond.wait()
        if window > 0:
            await asyncio.sleep(window)
            async with self._cond:
                self._expire_pending()
                if not self._heap:
                    return []
        lead = self._pop()
        fingerprint = lead.request.fingerprint
        batch = [lead]
        batch.extend(self._pop_matching(fingerprint))
        batch.sort(key=lambda job: job.seq)
        now = self._now()
        for job in batch:
            job.state = JobState.RUNNING
            job.started_at = now
            job.attempts += 1
            job.batch_width = len(batch)
            self.stats.queue_seconds += now - job.submitted_at
        self.stats.batches += 1
        self.stats.batched_jobs += len(batch)
        self.stats.max_batch_width = max(self.stats.max_batch_width,
                                         len(batch))
        return batch

    def finish(self, job: Job, result: Dict[str, object]) -> None:
        """Record a computed result, honouring cancel/deadline flags."""
        if job.cancel_requested:
            self._finalize(job, JobState.CANCELLED,
                           error={"code": "job_cancelled",
                                  "message": "cancelled while running"})
        elif job.deadline is not None and self._now() > job.deadline:
            self._finalize(job, JobState.TIMEOUT,
                           error={"code": "job_timeout",
                                  "message": "deadline expired during "
                                             "execution"})
        else:
            job.result = result
            self._finalize(job, JobState.DONE)

    def fail(self, job: Job, message: str) -> None:
        self._finalize(job, JobState.FAILED,
                       error={"code": "worker_failure",
                              "message": message,
                              "attempts": job.attempts})

    async def retry_later(self, job: Job) -> bool:
        """Requeue ``job`` after backoff; False once retries exhausted."""
        if job.attempts > self.max_retries:
            return False
        if job.cancel_requested:
            self._finalize(job, JobState.CANCELLED,
                           error={"code": "job_cancelled",
                                  "message": "cancelled while running"})
            return True
        self.stats.retries += 1
        delay = self.backoff_base * (2 ** (job.attempts - 1))
        asyncio.get_running_loop().create_task(
            self._requeue_after(job, delay))
        return True

    async def _requeue_after(self, job: Job, delay: float) -> None:
        await asyncio.sleep(delay)
        job.state = JobState.PENDING
        self._push(job)
        async with self._cond:
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Draining.
    # ------------------------------------------------------------------
    def stop_accepting(self) -> None:
        self._accepting = False

    async def pause(self) -> None:
        self._paused = True

    async def resume(self) -> None:
        self._paused = False
        async with self._cond:
            self._cond.notify_all()

    async def wait_drained(self, poll: float = 0.01) -> None:
        """Return once every submitted job reached a terminal state."""
        while self.active:
            await asyncio.sleep(poll)

    async def wait_job(self, job: Job) -> Job:
        """Block until ``job`` reaches a terminal state."""
        if job.state in JobState.TERMINAL:
            return job
        event = asyncio.Event()
        job.waiters.append(event)
        if job.state in JobState.TERMINAL:  # finalized before append
            return job
        await event.wait()
        return job

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------
    def _push(self, job: Job) -> None:
        heapq.heappush(self._heap,
                       (-job.request.priority, job.seq, job.id))

    def _pop(self) -> Job:
        _, _, job_id = heapq.heappop(self._heap)
        return self.jobs[job_id]

    def _pop_matching(self, fingerprint: str) -> List[Job]:
        matched, kept = [], []
        for entry in self._heap:
            job = self.jobs[entry[2]]
            if job.request.fingerprint == fingerprint:
                matched.append(job)
            else:
                kept.append(entry)
        if matched:
            self._heap = kept
            heapq.heapify(self._heap)
        return matched

    def _expire_pending(self) -> None:
        now = self._now()
        expired = [entry for entry in self._heap
                   if (job := self.jobs[entry[2]]).deadline is not None
                   and now > job.deadline]
        if not expired:
            return
        keep = [entry for entry in self._heap if entry not in expired]
        self._heap = keep
        heapq.heapify(self._heap)
        for entry in expired:
            job = self.jobs[entry[2]]
            self._finalize(job, JobState.TIMEOUT,
                           error={"code": "job_timeout",
                                  "message": "deadline expired while "
                                             "queued"})

    def _finalize(self, job: Job, state: str,
                  error: Optional[Dict[str, object]] = None) -> None:
        job.state = state
        job.error = error
        job.finished_at = self._now()
        self.stats.observe_latency(job.finished_at - job.submitted_at)
        if state == JobState.DONE:
            self.stats.jobs_completed += 1
        elif state == JobState.FAILED:
            self.stats.jobs_failed += 1
        elif state == JobState.CANCELLED:
            self.stats.jobs_cancelled += 1
        elif state == JobState.TIMEOUT:
            self.stats.jobs_timed_out += 1
        job._wake()
