"""Columnar replay: vectorized DIM cost-model evaluation.

:func:`repro.system.traceeval.evaluate_trace` replays a trace with one
Python iteration per event *per configuration*; a matrix sweep therefore
pays ``events x configurations`` interpreter steps even though almost
everything it computes is shared.  This module restructures the replay
around the columnar lowering of :mod:`repro.sim.coltrace` and two
configuration-independence facts proved there: the bimodal-predictor
update sequence and the evaluator's ``seen`` set are pure functions of
the trace, identical under every configuration.

With those fixed, a replay decomposes into:

- **per-block cost tables** — the metric deltas of executing a block
  normally (miss path / baseline) or from the array (hit path) are
  static per (block, terminator outcome), so totals are one
  ``bincount`` + matrix product over the event columns;
- **per-occurrence decision columns** — every translation, extension
  gate, speculation verdict and flush trigger depends on the predictor
  only through ``saturated_direction`` at a known event boundary, which
  the precomputed timeline answers without replaying the predictor.

Two engines cover the configuration space:

- **Tier A** (``speculation=False``): translations make *zero*
  predictor/provider probes, so the whole replay vectorizes — the only
  sequential piece is the FIFO/LRU occupancy simulation, and even that
  collapses to a rank test when the working set fits the cache.
- **Tier B** (speculation): the reconfiguration-cache state machine is
  genuinely sequential, but each iteration reduces to list lookups: a
  configuration's exit outcome at its ``r``-th occurrence (commit /
  reprocess / mis-speculate at depth ``m``) is precomputed as an *exit
  code*, and each code indexes a per-template metric-delta row, an
  events-consumed count and a flush verdict.  The dynamic control-flow
  kinds (``repro.dim.params.DYNFLOW_MODES``) extend the same machinery:
  dual-path templates add four resolution codes (actual direction x
  winner-tail outcome), and loop templates — whose consumed-event count
  varies with the trip count — are walked on demand, with per-trip
  costs folded in as a rank-independent trip row.

Both tiers are **bit-identical** to :func:`evaluate_trace` — same
cycles, same :class:`DimStats`, same cache counters, same serialized
JSON — enforced by the differential tests in ``tests/test_colreplay.py``
across every workload and a grid of configurations.  The comments below
cite the event-engine lines they mirror; change those, change these.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cgra.configuration import Configuration
from repro.dim.engine import DimStats
from repro.dim.memo import policy_key
from repro.dim.translator import (
    PROBE_DIRECTION,
    PROBE_SUCCESSOR,
    Translator,
)
from repro.isa.opcodes import InstrClass
from repro.sim.coltrace import (
    CLASS_NONE,
    CLASS_NOT_TAKEN,
    CLASS_TAKEN,
    ColumnarTrace,
    NO_BOUND,
    PredictorTimeline,
    numpy_available,
    numpy_or_none,
)
from repro.sim.stats import TimingModel
from repro.sim.trace import BasicBlock, Trace
from repro.system.config import SystemConfig
from repro.system.costmodel import shared_cost_model
from repro.system.traceeval import SystemMetrics, _prefix_mem_ops

#: occurrence-memo sentinel (None is a valid "no translation" answer).
_ABSENT = object()

__all__ = [
    "ColumnarContext",
    "baseline_metrics_columnar",
    "columnar_available",
    "evaluate_trace_columnar",
    "replay_trace_columnar",
]

#: metric-delta column indices shared by every cost table.  CYC excludes
#: reconfiguration stalls and mis-speculation penalties (applied from
#: per-template execution counts and the MIS column); COM is the array's
#: committed-instruction count (``DimStats.array_instructions``).
CYC, INS, FET, LDS, STS, BRA, TAK, LUS, HILO, SYS, COM, MIS = range(12)
NFIELDS = 12


def columnar_available() -> bool:
    """True when the columnar engine can run (numpy importable and not
    disabled via ``REPRO_NO_NUMPY``)."""
    return numpy_available()


class _PhasePredictor:
    """The predictor as seen at one event boundary of the timeline.

    Translations only query ``saturated_direction``; answering from the
    timeline at the translation's boundary reproduces exactly what the
    live predictor would have said at that point of the replay.
    """

    __slots__ = ("_timeline", "_t")

    def __init__(self, timeline: PredictorTimeline, t: int):
        self._timeline = timeline
        self._t = t

    def saturated_direction(self, pc: int) -> Optional[bool]:
        return self._timeline.saturated_direction(pc, self._t)


class _Template:
    """One distinct translated configuration of a start block.

    Everything the replay loop needs per execution is precomputed here,
    most importantly the **exit codes**: at its ``r``-th trace
    occurrence, a configuration of blocks ``B0..B(K-1)`` deterministically
    exits via

    - code 0 — final block covers 0 instructions: reprocess, ``K-1``
      events consumed (traceeval's ``covered == 0 -> break``);
    - code 1 / 2 — full walk, final block tail executed normally with
      terminator not-taken / taken, ``K`` events consumed;
    - code ``3+m`` — first merged branch whose outcome differs from its
      ``expected_taken`` is at depth ``m``: mis-speculation, ``m+1``
      events consumed.

    The code depends only on the trace slice at the occurrence, so it is
    one vectorized pass per template; each code then indexes the
    metric-delta row (per timing model) and the consumed count.
    """

    __slots__ = ("config", "start_block", "blocks", "covered_instructions",
                 "exec_cycles", "rc_cycles", "alu_ops", "mult_ops",
                 "mem_ops", "lines_used", "extendable0", "last_term_none",
                 "gate_always", "last_branch_pc", "K", "ncodes", "consumed",
                 "reset_exit", "prior_reset", "code_list", "_deltas",
                 "_gates", "_opps", "_ctx", "kind", "kindcode", "chk",
                 "trip_cycles", "_trip_row", "int_pcs", "int_opps",
                 "back_expected_bit", "back_opp", "_merged_cond")

    def __init__(self, ctx: "ColumnarContext", config: Configuration):
        np = numpy_or_none()
        self._ctx = ctx
        self.config = config
        self.blocks = config.blocks
        self.start_block = config.blocks[0].block
        self.covered_instructions = config.covered_instructions
        self.exec_cycles = config.exec_cycles
        self.rc_cycles = config.reconfiguration_cycles
        result = config.result
        self.alu_ops = result.alu_ops
        self.mult_ops = result.mult_ops
        self.mem_ops = result.mem_ops
        self.lines_used = result.lines_used
        self.extendable0 = config.extendable
        self.kind = config.kind
        self.kindcode = {"linear": 0, "loop": 1, "dual": 2}[config.kind]
        self.chk = config.loop_check_cycles
        self.trip_cycles = config.trip_cycles
        last = config.blocks[-1].block
        term = last.terminator
        self.last_term_none = term is None
        # maybe_extend retranslates unconditionally for a merged-`j`
        # tail; a branch tail is gated on the counter being saturated.
        self.gate_always = term is not None \
            and term.klass is not InstrClass.BRANCH
        self.last_branch_pc = last.branch_pc
        K = len(config.blocks)
        self.K = K
        # misspec_count resets on every *matched* merged branch, so the
        # count after an exit depends only on whether a merged branch
        # preceded the exit point (engine.speculation_outcome).
        merged_branch = [cb.includes_terminator and cb.block.is_conditional
                        for cb in config.blocks]
        self.reset_exit = any(merged_branch[:K - 1])
        self.prior_reset = [any(merged_branch[:m]) for m in range(K - 1)]
        # interior merged-conditional lookup tables (flush verdicts for
        # the loop/dual replay branches; the linear branch uses the
        # precomputed flush_opp lists instead).
        self.int_pcs = [cb.block.branch_pc for cb in config.blocks[:K - 1]]
        self.int_opps = [0 if cb.expected_taken else 1
                         for cb in config.blocks[:K - 1]]
        self._deltas: Dict[TimingModel, List[List[int]]] = {}
        self._gates: Dict[int, Optional[List[bool]]] = {}
        self._opps: Dict[int, List[bool]] = {}
        self._trip_row: Optional[List[int]] = None
        if self.kindcode == 1:
            # loop: code 0 = clean back-edge exit, 1+m = interior merged
            # branch at depth m mis-speculated.  Exit codes, trip counts
            # and consumed-event counts vary with the trip count, so
            # they are computed per executed occurrence by loop_exit()
            # instead of eagerly per rank.
            back = config.blocks[-1]
            self.back_expected_bit = 1 if back.expected_taken else 0
            self.back_opp = 0 if back.expected_taken else 1
            self._merged_cond = [
                (m, 1 if config.blocks[m].expected_taken else 0)
                for m in range(K - 1) if merged_branch[m]]
            self.code_list = None
            self.consumed = None
            self.ncodes = K
            return
        self.back_expected_bit = 0
        self.back_opp = 0
        self._merged_cond = []
        if self.kindcode == 2:
            # dual: codes 0-3 = resolution (2*actual + successor taken),
            # 4+m = interior merged branch at depth m mis-speculated.
            self.ncodes = 4 + (K - 1)
            self.consumed = [K + 1] * 4 + [m + 1 for m in range(K - 1)]
            self._compute_dual_codes(np)
            return
        self.ncodes = 3 + (K - 1)
        self.consumed = [K - 1, K, K] + [m + 1 for m in range(K - 1)]

        # ---- exit code per occurrence --------------------------------
        positions = ctx.coltrace.occ[self.start_block.block_id]
        n = ctx.coltrace.n
        last_event = n - 1
        reprocess = config.blocks[-1].covered == 0
        merged = [(m, 1 if config.blocks[m].expected_taken else 0)
                  for m in range(K - 1)
                  if merged_branch[m]]
        if len(positions) < 256:
            # numpy per-template overhead dominates small occurrence
            # sets; the scalar walk is faster there.
            tk_list = ctx.coltrace.tk_list
            codes_py = []
            for position in positions.tolist():
                for m, expected in merged:
                    if tk_list[min(position + m, last_event)] != expected:
                        codes_py.append(3 + m)
                        break
                else:
                    codes_py.append(
                        0 if reprocess else
                        1 + tk_list[min(position + K - 1, last_event)])
            self.code_list = codes_py
        else:
            tk = ctx.coltrace.tk
            if reprocess:
                codes = np.zeros(len(positions), dtype=np.int64)
            else:
                # tail outcome decides between codes 1 and 2
                tail_positions = np.minimum(positions + (K - 1),
                                            last_event)
                codes = np.where(tk[tail_positions] == 1, 2, 1)
            # earliest mismatched merged branch wins: walk depths
            # ascending, assigning only still-pending occurrences.
            pending = np.ones(len(positions), dtype=bool)
            for m, expected in merged:
                branch_positions = np.minimum(positions + m, last_event)
                mismatch = pending & (tk[branch_positions] != expected)
                codes[mismatch] = 3 + m
                pending &= ~mismatch
            self.code_list = codes.tolist()

    def _compute_dual_codes(self, np) -> None:
        """Exit code per occurrence of a dual-path configuration.

        Interior depths mirror the linear walk; when every interior
        matches, the resolution code packs the predicated branch's
        actual direction with the winner block's own terminator outcome
        (the event consumed by the mid-block normal tail).
        """
        ctx = self._ctx
        positions = ctx.coltrace.occ[self.start_block.block_id]
        last_event = ctx.coltrace.n - 1
        K = self.K
        merged = [(m, 1 if self.blocks[m].expected_taken else 0)
                  for m in range(K - 1)
                  if self.blocks[m].includes_terminator
                  and self.blocks[m].block.is_conditional]
        if len(positions) < 256:
            tk_list = ctx.coltrace.tk_list
            codes_py = []
            for position in positions.tolist():
                for m, expected in merged:
                    if tk_list[min(position + m, last_event)] != expected:
                        codes_py.append(4 + m)
                        break
                else:
                    actual = tk_list[min(position + K - 1, last_event)]
                    succ = tk_list[min(position + K, last_event)]
                    codes_py.append(2 * actual + succ)
            self.code_list = codes_py
        else:
            tk = ctx.coltrace.tk
            branch_positions = np.minimum(positions + (K - 1), last_event)
            succ_positions = np.minimum(positions + K, last_event)
            codes = (2 * tk[branch_positions]
                     + tk[succ_positions]).astype(np.int64)
            pending = np.ones(len(positions), dtype=bool)
            for m, expected in merged:
                bp = np.minimum(positions + m, last_event)
                mismatch = pending & (tk[bp] != expected)
                codes[mismatch] = 4 + m
                pending &= ~mismatch
            self.code_list = codes.tolist()

    def loop_exit(self, position: int) -> Tuple[int, int, int]:
        """(code, extra trips, events consumed) of one loop execution.

        Walks the taken column from ``position``, one step per consumed
        event: trips continue while every interior merged branch matches
        and the back-edge resolves in the looping direction.  Loop spans
        are consumed exactly once by the replay, so the total walk cost
        over a trace is linear — which is why these are computed on
        demand rather than eagerly per rank (an eager walk would be
        quadratic in the trip count across overlapping occurrences).
        """
        tk = self._ctx.coltrace.tk_list
        last = self._ctx.coltrace.n - 1
        K = self.K
        back_bit = self.back_expected_bit
        merged = self._merged_cond
        t = 0
        while True:
            base = position + t * K
            if base + K - 1 > last:  # pragma: no cover
                raise RuntimeError(
                    "trace/configuration divergence in loop replay at "
                    f"event {base}")
            for m, expected in merged:
                if tk[base + m] != expected:
                    return (1 + m, t, t * K + m + 1)
            if tk[base + K - 1] != back_bit:
                return (0, t, (t + 1) * K)
            t += 1

    def delta(self, timing: TimingModel) -> List[List[int]]:
        """Metric-delta rows, one per exit code, under one timing model.

        Mirrors the array-execution walk of ``evaluate_trace`` (and its
        ``_run_loop`` / ``_run_dual`` variants) with the running totals
        checkpointed at every possible exit.
        """
        rows = self._deltas.get(timing)
        if rows is not None:
            return rows
        model = shared_cost_model(timing)
        if self.kindcode == 1:
            rows = self._delta_loop()
        elif self.kindcode == 2:
            rows = self._delta_dual(model)
        else:
            rows = self._delta_linear(model)
        self._deltas[timing] = rows
        return rows

    def _delta_linear(self, model) -> List[List[int]]:
        rows = [[0] * NFIELDS for _ in range(self.ncodes)]
        run = [0] * NFIELDS
        run[CYC] = self.exec_cycles
        K = self.K
        for q, cfg_block in enumerate(self.blocks):
            block = cfg_block.block
            loads, stores = _prefix_mem_ops(block, cfg_block.covered)
            run[COM] += cfg_block.covered
            run[LDS] += loads
            run[STS] += stores
            if q == K - 1:
                break
            if block.is_conditional:
                # exit 3+q: this merged branch mis-speculated.  Its
                # terminator still committed and the actual direction is
                # the opposite of the expected one.
                mis = list(run)
                mis[COM] += 1
                mis[BRA] += 1
                if not cfg_block.expected_taken:
                    mis[TAK] += 1
                mis[MIS] = 1
                mis[INS] = mis[COM]
                rows[3 + q] = mis
            # matched merged terminator: committed + branch, transfer
            # taken for jumps and taken-expected branches.
            run[COM] += 1
            run[BRA] += 1
            if not block.is_conditional or cfg_block.expected_taken:
                run[TAK] += 1
        last = self.blocks[-1]
        if last.covered == 0:
            row = list(run)
            row[INS] = row[COM]
            rows[0] = row
        else:
            cost = model.cost(last.block, last.covered)
            terminator = last.block.terminator
            for taken, code in ((False, 1), (True, 2)):
                row = list(run)
                row[CYC] += cost.cycles(taken)
                row[INS] = row[COM] + cost.instructions
                row[FET] += cost.fetches
                row[LDS] += cost.loads
                row[STS] += cost.stores
                row[BRA] += cost.branches
                row[LUS] += cost.load_use_stalls
                row[HILO] += cost.hilo_stalls
                row[SYS] += cost.syscalls
                if terminator is not None and (
                        terminator.klass is InstrClass.JUMP or taken):
                    row[TAK] += 1
                rows[code] = row
        return rows

    def _delta_loop(self) -> List[List[int]]:
        """Base (zero-extra-trip) rows of a loop configuration.

        Row 0 is the clean back-edge exit of the first trip: it pays the
        exit check and its transfer goes the non-looping direction.  Row
        ``1+m`` is an interior mis-speculation before any back-edge was
        reached, so no check is charged.  Executions with extra trips
        add ``trip_row()`` once per trip on top (``traceeval._run_loop``).
        """
        rows = [[0] * NFIELDS for _ in range(self.ncodes)]
        run = [0] * NFIELDS
        run[CYC] = self.exec_cycles
        K = self.K
        for q, cfg_block in enumerate(self.blocks):
            block = cfg_block.block
            loads, stores = _prefix_mem_ops(block, cfg_block.covered)
            run[COM] += cfg_block.covered
            run[LDS] += loads
            run[STS] += stores
            if q == K - 1:
                break
            if block.is_conditional:
                mis = list(run)
                mis[COM] += 1
                mis[BRA] += 1
                if not cfg_block.expected_taken:
                    mis[TAK] += 1
                mis[MIS] = 1
                mis[INS] = mis[COM]
                rows[1 + q] = mis
            run[COM] += 1
            run[BRA] += 1
            if not block.is_conditional or cfg_block.expected_taken:
                run[TAK] += 1
        back = self.blocks[-1]
        row = list(run)
        row[CYC] += self.chk
        row[COM] += 1
        row[BRA] += 1
        if not back.expected_taken:
            row[TAK] += 1
        row[INS] = row[COM]
        rows[0] = row
        return rows

    def trip_row(self) -> List[int]:
        """Metric delta of one extra loop trip (timing-independent).

        A continuation re-executes the whole chain (all terminators
        included), pays the marginal dataflow depth plus the exit check,
        and its back-edge transfers in the looping direction.
        """
        row = self._trip_row
        if row is None:
            row = [0] * NFIELDS
            row[CYC] = self.trip_cycles + self.chk
            K = self.K
            for q, cfg_block in enumerate(self.blocks):
                block = cfg_block.block
                loads, stores = _prefix_mem_ops(block, cfg_block.covered)
                row[COM] += cfg_block.covered + 1
                row[LDS] += loads
                row[STS] += stores
                row[BRA] += 1
                if q == K - 1:
                    if cfg_block.expected_taken:
                        row[TAK] += 1
                elif not block.is_conditional or cfg_block.expected_taken:
                    row[TAK] += 1
            row[INS] = row[COM]
            self._trip_row = row
        return row

    def _delta_dual(self, model) -> List[List[int]]:
        """Rows of a dual-path configuration.

        The merged chain accumulates like the linear walk; the
        predicated terminator always commits, then each resolution code
        adds the winning side's covered prefix plus the normal-execution
        cost of the winner block's tail (``traceeval._run_dual``).
        """
        rows = [[0] * NFIELDS for _ in range(self.ncodes)]
        run = [0] * NFIELDS
        run[CYC] = self.exec_cycles
        K = self.K
        for q, cfg_block in enumerate(self.blocks):
            block = cfg_block.block
            loads, stores = _prefix_mem_ops(block, cfg_block.covered)
            run[COM] += cfg_block.covered
            run[LDS] += loads
            run[STS] += stores
            if q == K - 1:
                break
            if block.is_conditional:
                mis = list(run)
                mis[COM] += 1
                mis[BRA] += 1
                if not cfg_block.expected_taken:
                    mis[TAK] += 1
                mis[MIS] = 1
                mis[INS] = mis[COM]
                rows[4 + q] = mis
            run[COM] += 1
            run[BRA] += 1
            if not block.is_conditional or cfg_block.expected_taken:
                run[TAK] += 1
        # the predicated terminator itself always commits
        run[COM] += 1
        run[BRA] += 1
        config = self.config
        for actual, side in ((0, config.dual_fallthrough),
                             (1, config.dual_taken)):
            wblk = side.block
            wloads, wstores = _prefix_mem_ops(wblk, side.covered)
            cost = model.cost(wblk, side.covered)
            terminator = wblk.terminator
            for succ in (0, 1):
                row = list(run)
                row[TAK] += actual
                row[COM] += side.covered
                row[CYC] += cost.cycles(succ == 1)
                row[INS] = row[COM] + cost.instructions
                row[FET] += cost.fetches
                row[LDS] += wloads + cost.loads
                row[STS] += wstores + cost.stores
                row[BRA] += cost.branches
                row[LUS] += cost.load_use_stalls
                row[HILO] += cost.hilo_stalls
                row[SYS] += cost.syscalls
                if terminator is not None and (
                        terminator.klass is InstrClass.JUMP or succ):
                    row[TAK] += 1
                rows[2 * actual + succ] = row
        return rows

    def ext_gate(self, timeline: PredictorTimeline) -> Optional[List[bool]]:
        """Per-occurrence extension gate, or None when ungated.

        ``maybe_extend`` only retranslates a branch-tailed configuration
        when the tail branch's counter is saturated *before* the event's
        own update — boundary ``i`` for a hit at event ``i``.
        """
        if self.gate_always:
            return None
        gate = self._gates.get(timeline.entries)
        if gate is None:
            positions = self._ctx.coltrace.occ[self.start_block.block_id]
            if len(positions) < 48:
                pc = self.last_branch_pc
                gate = [timeline.class_at(pc, t) != CLASS_NONE
                        for t in positions.tolist()]
            else:
                classes = timeline.class_for_many(self.last_branch_pc,
                                                  positions)
                gate = (classes != CLASS_NONE).tolist()
            self._gates[timeline.entries] = gate
        return gate

    def flush_opp(self, timeline: PredictorTimeline) -> List[bool]:
        """Per-occurrence "counter reached the opposite value" verdicts.

        Evaluated only at mismatch exits; the predictor state queried is
        *after* the mismatched branch's own update (boundary
        ``position + m + 1``), exactly as ``speculation_outcome`` updates
        first and reads second.
        """
        opp = self._opps.get(timeline.entries)
        if opp is None:
            positions = self._ctx.coltrace.occ[self.start_block.block_id]
            if len(positions) < 48:
                opp = [False] * len(positions)
                for index, (position, code) in enumerate(
                        zip(positions.tolist(), self.code_list)):
                    if code < 3:
                        continue
                    m = code - 3
                    cfg_block = self.blocks[m]
                    opposite = 0 if cfg_block.expected_taken else 1
                    opp[index] = timeline.class_at(
                        cfg_block.block.branch_pc,
                        position + m + 1) == opposite
            else:
                np = numpy_or_none()
                codes = np.asarray(self.code_list, dtype=np.int64)
                verdict = np.zeros(len(positions), dtype=bool)
                for m in range(self.K - 1):
                    cfg_block = self.blocks[m]
                    if not (cfg_block.includes_terminator
                            and cfg_block.block.is_conditional):
                        continue
                    mask = codes == 3 + m
                    if not mask.any():
                        continue
                    classes = timeline.class_for_many(
                        cfg_block.block.branch_pc, positions[mask] + m + 1)
                    opposite = 0 if cfg_block.expected_taken else 1
                    verdict[mask] = classes == opposite
                opp = verdict.tolist()
            self._opps[timeline.entries] = opp
        return opp


class _TranslationTimeline:
    """Probe-validated translation results along the replay timeline.

    The columnar analogue of :class:`repro.dim.memo.TranslationMemo`: a
    translation at event boundaries ``(t_pred, t_seen)`` is a pure
    function of the start block plus the probe answers, so each start
    block keeps a variant list of ``(probes, template)`` pairs.  Instead
    of re-asking a live predictor, validation intersects the timeline
    spans over which every recorded answer holds into a *validity box*;
    queries inside the box hit without touching the probes at all.
    """

    __slots__ = ("ctx", "translator", "timeline", "templates", "_dpcs",
                 "_sthr", "_sigmap", "_probed", "_occmemo",
                 "hits", "misses")

    def __init__(self, ctx: "ColumnarContext", config: SystemConfig,
                 timeline: PredictorTimeline,
                 templates: Dict[Tuple, _Template]):
        self.ctx = ctx
        self.timeline = timeline
        self.templates = templates
        # per-block probe universe: every branch PC any past translation
        # of the block direction-probed, and the seen-set thresholds
        # (first occurrence + 1) of every successor-probed PC.  The
        # translator is deterministic, so two query points with equal
        # classes over the whole universe take the same probe path and
        # produce the same template (see translate_at).
        self._dpcs: Dict[int, List[int]] = {}
        self._sthr: Dict[int, List[int]] = {}
        self._sigmap: Dict[int, Dict[Tuple, Optional[_Template]]] = {}
        #: per-block (probes, template) pairs, append-only.  When a
        #: universe grows, signatures keyed by the old universe can no
        #: longer match; probe revalidation against these recovers the
        #: answer without re-running the translator.
        self._probed: Dict[int, List[Tuple[List, Optional[_Template]]]] = {}
        #: per-block query-point memo (see translate_at).
        self._occmemo: Dict[int, Dict[int, Optional[_Template]]] = {}
        self.hits = 0
        self.misses = 0
        # the provider below is rebound per translation (closures over
        # t_seen); the Translator only keeps references.
        self.translator = Translator(config.shape, config.dim,
                                     None, None)

    def _provider(self, t_seen: int):
        table = self.ctx.coltrace.table
        first_event_by_pc = self.ctx.coltrace.first_event_by_pc

        def provider(pc: int) -> Optional[BasicBlock]:
            first = first_event_by_pc.get(pc)
            if first is None or first >= t_seen:
                return None
            return table.get_by_pc(pc)

        return provider

    def _signature(self, block_id: int, t_pred: int,
                   t_seen: int) -> Tuple[Tuple, int, int, int, int]:
        """(signature, box) of the block's probe universe at one point.

        The signature is the tuple of saturation classes of every
        direction-probed PC at ``t_pred`` followed by the seen-bits of
        every successor threshold at ``t_seen``; the box is the maximal
        (pred, seen) rectangle over which the signature is constant.
        """
        class_span = self.timeline.class_span
        plo, phi = 0, NO_BOUND
        slo, shi = 0, NO_BOUND
        sig = []
        for pc in self._dpcs[block_id]:
            klass, lo, hi = class_span(pc, t_pred)
            sig.append(klass)
            if lo > plo:
                plo = lo
            if hi < phi:
                phi = hi
        for threshold in self._sthr[block_id]:
            if t_seen >= threshold:
                sig.append(1)
                if threshold > slo:
                    slo = threshold
            else:
                sig.append(0)
                if threshold < shi:
                    shi = threshold
        return tuple(sig), plo, phi, slo, shi

    def _probes_hold(self, probes, t_pred: int, t_seen: int) -> bool:
        """Would a stored probe set get the same answers at this point?"""
        class_at = self.timeline.class_at
        first_event_by_pc = self.ctx.coltrace.first_event_by_pc
        for kind, pc, answer in probes:
            if kind == PROBE_DIRECTION:
                if class_at(pc, t_pred) != answer:
                    return False
            else:
                first = first_event_by_pc.get(pc)
                seen = first is not None and first < t_seen
                if seen != (answer is not None):
                    return False
        return True

    def translate_at(self, block: BasicBlock, t_pred: int,
                     t_seen: int) -> Optional[_Template]:
        """Template for translating ``block`` at one replay point.

        Soundness of the signature memo: the translator is a
        deterministic sequential prober — its next probe is a function
        of the answers so far.  If two query points agree on the
        answers of *every* PC in the block's probe universe (which
        contains all PCs any past translation of the block probed),
        they take the same probe path, receive the same answers, and
        yield the same template by induction over the probe sequence.
        """
        block_id = block.block_id
        # replay queries only ever come as (p+1, p+1) (translate after a
        # miss at position p) or (p, p+1) (extension attempt at a hit),
        # so (t_seen, t_seen - t_pred) identifies the query point and an
        # int-keyed per-occurrence memo answers repeats — in particular
        # the same point queried by every slot variant of the namespace.
        occ = self._occmemo.get(block_id)
        key = (t_seen << 1) | (t_seen - t_pred)
        if occ is None:
            occ = self._occmemo[block_id] = {}
        else:
            template = occ.get(key, _ABSENT)
            if template is not _ABSENT:
                self.hits += 1
                return template
        known = self._sigmap.get(block_id)
        if known is not None:
            sig, plo, phi, slo, shi = self._signature(block_id,
                                                      t_pred, t_seen)
            if sig in known:
                template = known[sig]
                self.hits += 1
                occ[key] = template
                return template
            # new signature: revalidate stored probe sets before paying
            # for a fresh translation (a past variant may still answer —
            # the new signature merely refines a grown universe).
            for probes, template in self._probed[block_id]:
                if self._probes_hold(probes, t_pred, t_seen):
                    self.hits += 1
                    known[sig] = template
                    occ[key] = template
                    return template
        self.misses += 1
        translator = self.translator
        translator.predictor = _PhasePredictor(self.timeline, t_pred)
        translator.block_provider = self._provider(t_seen)
        probe_log: List[Tuple[int, int, object]] = []
        config = translator.translate(block, probe_log)
        template: Optional[_Template] = None
        if config is not None:
            key = (tuple((cb.block.block_id, cb.covered,
                          cb.includes_terminator, cb.expected_taken)
                         for cb in config.blocks), config.extendable,
                   config.kind,
                   None if config.dual_taken is None else
                   (config.dual_taken.block.block_id,
                    config.dual_taken.covered),
                   None if config.dual_fallthrough is None else
                   (config.dual_fallthrough.block.block_id,
                    config.dual_fallthrough.covered))
            template = self.templates.get(key)
            if template is None:
                template = _Template(self.ctx, config)
                self.templates[key] = template
        # grow the probe universe with any PC this translation touched,
        # then key the result by the signature over the *updated*
        # universe.  Entries keyed by an older (shorter) universe can
        # no longer be matched — harmless, they are just dead weight.
        if known is None:
            known = self._sigmap[block_id] = {}
            self._probed[block_id] = []
            dpcs = self._dpcs[block_id] = []
            sthr = self._sthr[block_id] = []
        else:
            dpcs = self._dpcs[block_id]
            sthr = self._sthr[block_id]
        first_event_by_pc = self.ctx.coltrace.first_event_by_pc
        probes = []
        for kind, pc, answer in probe_log:
            if kind == PROBE_DIRECTION:
                # normalize to the timeline vocabulary: saturation class
                probes.append((kind, pc, CLASS_NONE if answer is None
                               else (CLASS_TAKEN if answer
                                     else CLASS_NOT_TAKEN)))
                if pc not in dpcs:
                    dpcs.append(pc)
            else:
                probes.append((kind, pc,
                               None if answer is None else answer.block_id))
                first = first_event_by_pc.get(pc)
                threshold = NO_BOUND if first is None else first + 1
                if threshold not in sthr:
                    sthr.append(threshold)
        self._probed[block_id].append((probes, template))
        sig = self._signature(block_id, t_pred, t_seen)[0]
        known[sig] = template
        occ[key] = template
        return template


class ColumnarContext:
    """Shared per-workload state for replaying many configurations.

    Owns the lowered trace, the per-timing cost tables and the
    per-(shape, policy) translation caches; one context per workload
    replaces the per-workload :class:`TranslationMemo` of the event
    path.  ``alloc_hits``/``alloc_misses`` accumulate the translation
    reuse counters for sweep instrumentation.
    """

    def __init__(self, trace: Trace, name: str = "",
                 coltrace: Optional[ColumnarTrace] = None):
        self.trace = trace
        self.name = name
        self.coltrace = coltrace if coltrace is not None \
            else ColumnarTrace(trace)
        self._miss_tables: Dict[TimingModel, object] = {}
        self._nospec: Dict[Tuple, dict] = {}
        self._nospec_exec: Dict[Tuple, object] = {}
        self._timelines: Dict[Tuple, _TranslationTimeline] = {}
        self._templates: Dict[Tuple, Dict[Tuple, _Template]] = {}
        self.alloc_hits = 0
        self.alloc_misses = 0

    # ------------------------------------------------------------------
    # Normal-execution cost tables (miss path and baseline).
    # ------------------------------------------------------------------
    def miss_table(self, timing: TimingModel):
        """Row ``2*block + taken`` -> the 12 metric deltas of executing
        the whole block normally (traceeval's ``_account_normal``)."""
        table = self._miss_tables.get(timing)
        if table is None:
            np = numpy_or_none()
            model = shared_cost_model(timing)
            blocks = self.coltrace.table.blocks
            table = np.zeros((2 * len(blocks), NFIELDS), dtype=np.int64)
            occurring = self.coltrace.first_occ < self.coltrace.n
            for block in blocks:
                if not occurring[block.block_id]:
                    continue
                cost = model.cost(block, 0)
                terminator = block.terminator
                for taken in (0, 1):
                    row = table[2 * block.block_id + taken]
                    row[CYC] = cost.cycles(taken == 1)
                    row[INS] = cost.instructions
                    row[FET] = cost.fetches
                    row[LDS] = cost.loads
                    row[STS] = cost.stores
                    row[BRA] = cost.branches
                    row[LUS] = cost.load_use_stalls
                    row[HILO] = cost.hilo_stalls
                    row[SYS] = cost.syscalls
                    if terminator is not None and (
                            terminator.klass is InstrClass.JUMP or taken):
                        row[TAK] = 1
            self._miss_tables[timing] = table
        return table

    def event_totals(self, timing: TimingModel):
        """Whole-trace normal-execution totals (the MIPS baseline)."""
        np = numpy_or_none()
        coltrace = self.coltrace
        counts = np.bincount(coltrace.key2,
                             minlength=2 * coltrace.nblocks)
        return counts @ self.miss_table(timing)

    # ------------------------------------------------------------------
    # Tier A: speculation disabled.
    # ------------------------------------------------------------------
    def nospec_tables(self, config: SystemConfig) -> dict:
        """Per-block translation columns for a no-speculation policy.

        Translation without speculation makes no predictor/provider
        probes, so each block has exactly one outcome per (shape,
        policy): covered prefix length, cacheability, execution cycles,
        reconfiguration stall and the per-execution op counts.
        """
        key = (config.shape, policy_key(config.dim))
        tables = self._nospec.get(key)
        if tables is None:
            np = numpy_or_none()
            blocks = self.coltrace.table.blocks
            nblocks = len(blocks)
            translator = Translator(config.shape, config.dim, None, None)
            occurring = self.coltrace.first_occ < self.coltrace.n
            covered = np.zeros(nblocks, dtype=np.int64)
            cacheable = np.zeros(nblocks, dtype=bool)
            exec_cycles = np.zeros(nblocks, dtype=np.int64)
            stall = np.zeros(nblocks, dtype=np.int64)
            alu = np.zeros(nblocks, dtype=np.int64)
            mult = np.zeros(nblocks, dtype=np.int64)
            mem = np.zeros(nblocks, dtype=np.int64)
            lines = np.zeros(nblocks, dtype=np.int64)
            overlap = config.dim.reconfig_overlap
            for block in blocks:
                if not occurring[block.block_id]:
                    continue
                translated = translator.translate(block)
                if translated is None:
                    continue
                b = block.block_id
                cacheable[b] = True
                covered[b] = translated.covered_instructions
                exec_cycles[b] = translated.exec_cycles
                stall[b] = max(0, translated.reconfiguration_cycles
                               - overlap)
                result = translated.result
                alu[b] = result.alu_ops
                mult[b] = result.mult_ops
                mem[b] = result.mem_ops
                lines[b] = result.lines_used
            tables = {"covered": covered, "cacheable": cacheable,
                      "exec_cycles": exec_cycles, "stall": stall,
                      "alu": alu, "mult": mult, "mem": mem, "lines": lines}
            self._nospec[key] = tables
        return tables

    def nospec_exec_table(self, config: SystemConfig,
                          tables: dict):
        """Row ``2*block + taken`` -> hit-path metric deltas (array
        execution of the covered prefix + normal tail)."""
        key = (config.shape, policy_key(config.dim), config.timing)
        table = self._nospec_exec.get(key)
        if table is None:
            np = numpy_or_none()
            model = shared_cost_model(config.timing)
            blocks = self.coltrace.table.blocks
            table = np.zeros((2 * len(blocks), NFIELDS), dtype=np.int64)
            cacheable = tables["cacheable"]
            covered = tables["covered"]
            exec_cycles = tables["exec_cycles"]
            for block in blocks:
                b = block.block_id
                if not cacheable[b]:
                    continue
                prefix = int(covered[b])
                loads, stores = _prefix_mem_ops(block, prefix)
                cost = model.cost(block, prefix)
                terminator = block.terminator
                for taken in (0, 1):
                    row = table[2 * b + taken]
                    row[CYC] = int(exec_cycles[b]) + cost.cycles(taken == 1)
                    row[INS] = prefix + cost.instructions
                    row[FET] = cost.fetches
                    row[LDS] = loads + cost.loads
                    row[STS] = stores + cost.stores
                    row[BRA] = cost.branches
                    row[LUS] = cost.load_use_stalls
                    row[HILO] = cost.hilo_stalls
                    row[SYS] = cost.syscalls
                    if terminator is not None and (
                            terminator.klass is InstrClass.JUMP or taken):
                        row[TAK] = 1
                    row[COM] = prefix
            self._nospec_exec[key] = table
        return table

    # ------------------------------------------------------------------
    # Tier B plumbing.
    # ------------------------------------------------------------------
    def translation_timeline(
            self, config: SystemConfig) -> _TranslationTimeline:
        key = (config.shape, policy_key(config.dim),
               config.dim.predictor_entries)
        timeline = self._timelines.get(key)
        if timeline is None:
            template_key = (config.shape, policy_key(config.dim))
            templates = self._templates.get(template_key)
            if templates is None:
                templates = self._templates[template_key] = {}
            timeline = _TranslationTimeline(
                self, config,
                self.coltrace.timeline(config.dim.predictor_entries),
                templates)
            self._timelines[key] = timeline
        return timeline


# ----------------------------------------------------------------------
# Public entry points.
# ----------------------------------------------------------------------
def baseline_metrics_columnar(context: ColumnarContext,
                              timing: Optional[TimingModel] = None
                              ) -> SystemMetrics:
    """Columnar equivalent of :func:`traceeval.baseline_metrics`."""
    totals = context.event_totals(timing or TimingModel())
    return SystemMetrics(
        name="mips",
        cycles=int(totals[CYC]),
        instructions=int(totals[INS]),
        fetches=int(totals[FET]),
        loads=int(totals[LDS]),
        stores=int(totals[STS]),
        branches=int(totals[BRA]),
        taken_transfers=int(totals[TAK]),
        load_use_stalls=int(totals[LUS]),
        hilo_stalls=int(totals[HILO]),
        syscalls=int(totals[SYS]),
    )


def _finish_metrics(name: str, config: SystemConfig, fields,
                    stats: DimStats, lookups: int, hits: int,
                    insertions: int, evictions: int, invalidations: int,
                    timeline: PredictorTimeline) -> SystemMetrics:
    stats.misspeculations = int(fields[MIS])
    stats.array_instructions = int(fields[COM])
    metrics = SystemMetrics(
        name=name or config.name,
        cycles=int(fields[CYC]),
        instructions=int(fields[INS]),
        fetches=int(fields[FET]),
        loads=int(fields[LDS]),
        stores=int(fields[STS]),
        branches=int(fields[BRA]),
        taken_transfers=int(fields[TAK]),
        load_use_stalls=int(fields[LUS]),
        hilo_stalls=int(fields[HILO]),
        syscalls=int(fields[SYS]),
        dim=stats,
        cache_lookups=lookups,
        cache_hits=hits,
        cache_insertions=insertions,
        cache_evictions=evictions,
        cache_invalidations=invalidations,
        predictor_accuracy=timeline.hits / timeline.updates
        if timeline.updates else 0.0,
    )
    return metrics


def _replay_nospec(context: ColumnarContext, config: SystemConfig,
                   name: str) -> SystemMetrics:
    """Tier A: fully-vectorized replay of a no-speculation system."""
    np = numpy_or_none()
    coltrace = context.coltrace
    n = coltrace.n
    tables = context.nospec_tables(config)
    cacheable = tables["cacheable"]
    covered = tables["covered"]
    ev = coltrace.ev
    event_cacheable = cacheable[ev]

    slots = config.dim.cache_slots
    distinct_cacheable = int(np.count_nonzero(
        cacheable & (coltrace.first_occ < n)))
    stats = DimStats()
    evictions = 0
    if distinct_cacheable <= slots:
        # the working set fits: a cacheable block hits on every
        # occurrence after its first, and nothing is ever evicted.
        hit_mask = event_cacheable & (coltrace.rank > 0)
        miss_head = ~hit_mask[:n - 1] if n else hit_mask[:0]
        stats.translations = int(np.count_nonzero(miss_head))
        insert_mask = miss_head & event_cacheable[:n - 1]
        insertions = int(np.count_nonzero(insert_mask))
        stats.translated_instructions = int(
            covered[ev[:n - 1]][insert_mask].sum())
        stats.config_writes = insertions
    else:
        # capacity pressure: simulate FIFO/LRU occupancy over cacheable
        # events only (uncacheable blocks never enter the cache and are
        # folded in vectorially below).
        insertions = 0
        translations = 0
        translated_instructions = 0
        covered_list = covered.tolist()
        last = n - 1
        positions = np.flatnonzero(event_cacheable)
        bids = ev[positions].tolist()
        hit_positions: List[int] = []
        append_hit = hit_positions.append
        if config.dim.cache_policy == "lru":
            occupancy: Dict[int, None] = {}
            for position, b in zip(positions.tolist(), bids):
                if b in occupancy:
                    append_hit(position)
                    del occupancy[b]
                    occupancy[b] = None
                elif position < last:
                    translations += 1
                    translated_instructions += covered_list[b]
                    if len(occupancy) >= slots:
                        del occupancy[next(iter(occupancy))]
                        evictions += 1
                    occupancy[b] = None
                    insertions += 1
        else:
            # FIFO: hits never reorder, so a resident set plus an
            # insertion-order deque mirrors the OrderedDict exactly.
            resident: set = set()
            order: deque = deque()
            for position, b in zip(positions.tolist(), bids):
                if b in resident:
                    append_hit(position)
                elif position < last:
                    translations += 1
                    translated_instructions += covered_list[b]
                    if len(resident) >= slots:
                        resident.discard(order.popleft())
                        evictions += 1
                    resident.add(b)
                    order.append(b)
                    insertions += 1
        hit_mask = np.zeros(n, dtype=bool)
        if hit_positions:
            hit_mask[np.asarray(hit_positions, dtype=np.int64)] = True
        translations += int(np.count_nonzero(~event_cacheable[:n - 1]))
        stats.translations = translations
        stats.translated_instructions = translated_instructions
        stats.config_writes = insertions

    key2 = coltrace.key2
    nrows = 2 * coltrace.nblocks
    miss_counts = np.bincount(key2[~hit_mask], minlength=nrows)
    hit_counts = np.bincount(key2[hit_mask], minlength=nrows)
    fields = miss_counts @ context.miss_table(config.timing) \
        + hit_counts @ context.nospec_exec_table(config, tables)

    # per-execution DIM stats from per-block hit counts
    block_hits = np.bincount(ev[hit_mask], minlength=coltrace.nblocks)
    executions = int(block_hits.sum())
    stats.array_executions = executions
    stats.array_alu_ops = int(block_hits @ tables["alu"])
    stats.array_mult_ops = int(block_hits @ tables["mult"])
    stats.array_mem_ops = int(block_hits @ tables["mem"])
    array_cycles = int(block_hits @ tables["exec_cycles"])
    stats.array_cycles = array_cycles
    stats.array_line_cycles = int(
        block_hits @ (tables["lines"] * tables["exec_cycles"]))
    stats.array_potential_line_cycles = \
        min(config.shape.rows, 1 << 20) * array_cycles
    stalls = int(block_hits @ tables["stall"])
    stats.reconfiguration_stalls = stalls

    hits = int(np.count_nonzero(hit_mask))
    timeline = coltrace.timeline(config.dim.predictor_entries)
    total = fields.copy()
    total[CYC] += stalls
    return _finish_metrics(name, config, total, stats, n, hits,
                           insertions, evictions, 0, timeline)


def _replay_spec(context: ColumnarContext, config: SystemConfig,
                 name: str) -> SystemMetrics:
    """Tier B: indexed sequential replay of a speculating system.

    One Python iteration per *cache transaction* (not per metric), with
    every decision reduced to a precomputed list lookup.  Entries are
    flat lists ``[template, misspec_count, extendable, code_stats,
    codes, consumed, flush_opp, ext_gate, kindcode]``; ``code_stats``
    is shared per template so exit-code counts aggregate across
    reinsertion (loop templates carry one extra trailing slot that
    accumulates extra trips).  Loop and dual templates dispatch on
    ``kindcode``: their flush/retire verdicts are answered inline from
    the predictor timeline because the query boundary depends on the
    per-execution trip count, and loop exits are walked on demand
    (``_Template.loop_exit``) rather than precomputed per rank.
    """
    np = numpy_or_none()
    coltrace = context.coltrace
    params = config.dim
    timeline = coltrace.timeline(params.predictor_entries)
    translation = context.translation_timeline(config)
    translate_at = translation.translate_at
    blocks = coltrace.table.blocks

    ev = coltrace.ev_list
    rank = coltrace.rank_list
    n = coltrace.n
    last = n - 1
    slots = params.cache_slots
    lru = params.cache_policy == "lru"
    threshold = params.misspec_flush_threshold

    nrows = 2 * coltrace.nblocks
    miss_counts = [0] * nrows
    code_stats: Dict[_Template, List[int]] = {}
    protos: Dict[_Template, list] = {}
    cache: Dict[int, list] = {}
    cache_get = cache.get
    hits = misses = 0
    insertions = evictions = invalidations = 0
    translations = extensions = flushes = 0
    translated_instructions = config_writes = 0
    loop_configs = dual_configs = 0
    loop_retired = dual_retired = 0
    tk = coltrace.tk_list
    class_at = timeline.class_at

    def fresh_entry(template: _Template) -> list:
        # prototype per template: reinsertion after a flush only needs a
        # shallow copy (slots 1-2 are the entry's private scalars; the
        # stats list is intentionally shared across reinsertion).
        proto = protos.get(template)
        if proto is None:
            kindcode = template.kindcode
            # loop templates get a trailing extra-trips accumulator
            st = code_stats[template] = \
                [0] * (template.ncodes + (1 if kindcode == 1 else 0))
            if kindcode == 0:
                proto = protos[template] = [
                    template, 0, template.extendable0, st,
                    template.code_list, template.consumed,
                    template.flush_opp(timeline),
                    template.ext_gate(timeline)
                    if template.extendable0 else None, 0]
            else:
                # loop/dual configurations are closed: never extendable,
                # verdicts answered inline from the timeline.
                proto = protos[template] = [
                    template, 0, False, st, template.code_list,
                    template.consumed, None, None, kindcode]
        return proto.copy()

    i = 0
    while i < n:
        b = ev[i]
        entry = cache_get(b)
        if entry is None:
            misses += 1
            miss_counts[2 * b + tk[i]] += 1
            if i < last:
                # consider_translation: peek is a guaranteed miss here
                template = translate_at(blocks[b], i + 1, i + 1)
                translations += 1
                if template is not None:
                    translated_instructions += \
                        template.covered_instructions
                    config_writes += 1
                    if template.kindcode == 1:
                        loop_configs += 1
                    elif template.kindcode == 2:
                        dual_configs += 1
                    if len(cache) >= slots:
                        del cache[next(iter(cache))]
                        evictions += 1
                    cache[b] = fresh_entry(template)
                    insertions += 1
            i += 1
            continue

        hits += 1
        if lru:
            del cache[b]
            cache[b] = entry
        template = entry[0]
        # ---- maybe_extend --------------------------------------------
        if entry[2]:
            if template.last_term_none:
                entry[2] = False
            else:
                gate = entry[7]
                if gate is None or gate[rank[i]]:
                    translations += 1
                    new = translate_at(blocks[b], i, i + 1)
                    if new is not None and new.covered_instructions \
                            > template.covered_instructions:
                        extensions += 1
                        translated_instructions += \
                            new.covered_instructions
                        config_writes += 1
                        if new.kindcode == 1:
                            loop_configs += 1
                        elif new.kindcode == 2:
                            dual_configs += 1
                        entry = fresh_entry(new)
                        cache[b] = entry   # in-place slot rewrite
                        template = new
                    else:
                        entry[2] = new is not None and new.extendable0

        # ---- array execution (precomputed exit) ----------------------
        kindcode = entry[8]
        if kindcode == 0:
            r = rank[i]
            code = entry[4][r]
            entry[3][code] += 1
            if code >= 3:
                count = 1 if template.prior_reset[code - 3] \
                    else entry[1] + 1
                entry[1] = count
                if entry[6][r] or count >= threshold:
                    del cache[b]
                    flushes += 1
                    invalidations += 1
            elif template.reset_exit:
                entry[1] = 0
            i += entry[5][code]
        elif kindcode == 1:
            # loop: the back-edge resets the mis-speculation count every
            # trip; a clean exit retires the configuration (not a flush)
            # when the counter saturated in the exit direction.  Verdict
            # boundaries sit right after the exit's own update, i.e. at
            # ``i + consumed`` (engine.loop_backedge updates first).
            code, trips, consumed = template.loop_exit(i)
            st = entry[3]
            st[code] += 1
            st[-1] += trips
            if code == 0:
                entry[1] = 0
                if class_at(template.last_branch_pc, i + consumed) \
                        == template.back_opp:
                    del cache[b]
                    invalidations += 1
                    loop_retired += 1
            else:
                m = code - 1
                count = 1 if (trips or template.prior_reset[m]) \
                    else entry[1] + 1
                entry[1] = count
                if count >= threshold or class_at(
                        template.int_pcs[m], i + consumed) \
                        == template.int_opps[m]:
                    del cache[b]
                    flushes += 1
                    invalidations += 1
            i += consumed
        else:
            # dual: resolution always resets the count (predication is
            # not a mis-speculation) and retires the configuration once
            # the branch saturates either way, clearing the slot for a
            # deeper speculative rebuild (engine.dual_resolution).
            r = rank[i]
            code = entry[4][r]
            entry[3][code] += 1
            if code < 4:
                entry[1] = 0
                if class_at(template.last_branch_pc,
                            i + template.K) != CLASS_NONE:
                    del cache[b]
                    invalidations += 1
                    dual_retired += 1
            else:
                m = code - 4
                count = 1 if template.prior_reset[m] else entry[1] + 1
                entry[1] = count
                if count >= threshold or class_at(
                        template.int_pcs[m], i + m + 1) \
                        == template.int_opps[m]:
                    del cache[b]
                    flushes += 1
                    invalidations += 1
            i += entry[5][code]

    # ---- assembly -----------------------------------------------------
    fields = np.asarray(miss_counts, dtype=np.int64) \
        @ context.miss_table(config.timing)
    stats = DimStats(
        translations=translations,
        translated_instructions=translated_instructions,
        extensions=extensions,
        flushes=flushes,
        config_writes=config_writes,
        loop_configs=loop_configs,
        dual_configs=dual_configs,
        loop_retired=loop_retired,
        dual_retired=dual_retired,
    )
    stalls = 0
    array_cycles = 0
    for template, st in code_stats.items():
        if template.kindcode == 1:
            # loop: per-execution costs from the base rows plus one
            # trip row per accumulated extra trip; ops and array busy
            # time scale with trips, stalls with executions only
            # (engine.begin_execution / engine.loop_iteration).
            extra = st[-1]
            counts = st[:-1]
            executions = sum(counts)
            if not executions:
                continue
            fields = fields + np.asarray(counts, dtype=np.int64) \
                @ np.asarray(template.delta(config.timing),
                             dtype=np.int64)
            if extra:
                fields = fields + extra * np.asarray(
                    template.trip_row(), dtype=np.int64)
            runs = executions + extra
            stats.array_executions += executions
            stats.loop_executions += executions
            stats.loop_trips += runs
            stats.array_alu_ops += template.alu_ops * runs
            stats.array_mult_ops += template.mult_ops * runs
            stats.array_mem_ops += template.mem_ops * runs
            loop_cycles = template.exec_cycles * executions \
                + template.trip_cycles * extra
            array_cycles += loop_cycles
            stats.array_line_cycles += template.lines_used * loop_cycles
            stalls += max(0, template.rc_cycles
                          - params.reconfig_overlap) * executions
            continue
        executions = sum(st)
        if not executions:
            continue
        fields = fields + np.asarray(st, dtype=np.int64) \
            @ np.asarray(template.delta(config.timing), dtype=np.int64)
        stats.array_executions += executions
        stats.array_alu_ops += template.alu_ops * executions
        stats.array_mult_ops += template.mult_ops * executions
        stats.array_mem_ops += template.mem_ops * executions
        array_cycles += template.exec_cycles * executions
        stats.array_line_cycles += \
            template.lines_used * template.exec_cycles * executions
        stalls += max(0, template.rc_cycles
                      - params.reconfig_overlap) * executions
        if template.kindcode == 2:
            # both sides' ops were priced above (the allocation covers
            # the union); the losing side's instructions never commit.
            stats.dual_executions += executions
            dual_config = template.config
            stats.dual_squashed_instructions += \
                (st[0] + st[1]) * dual_config.dual_taken.covered \
                + (st[2] + st[3]) * dual_config.dual_fallthrough.covered
    stats.array_cycles = array_cycles
    stats.array_potential_line_cycles = \
        min(config.shape.rows, 1 << 20) * array_cycles
    stats.reconfiguration_stalls = stalls

    context.alloc_hits += translation.hits
    context.alloc_misses += translation.misses
    translation.hits = 0
    translation.misses = 0

    total = fields.copy()
    total[CYC] += stalls + int(total[MIS]) * params.misspec_penalty
    return _finish_metrics(name, config, total, stats, hits + misses,
                           hits, insertions, evictions, invalidations,
                           timeline)


def evaluate_trace_columnar(trace: Trace, config: SystemConfig,
                            name: str = "",
                            context: Optional[ColumnarContext] = None
                            ) -> SystemMetrics:
    """Columnar equivalent of :func:`traceeval.evaluate_trace`.

    Bit-identical metrics by construction (and by differential test);
    pass a shared ``context`` to amortize lowering and translation
    across many configurations of one trace.
    """
    if context is None:
        context = ColumnarContext(trace, name)
    if config.dim.speculation:
        return _replay_spec(context, config, name)
    return _replay_nospec(context, config, name)


def replay_trace_columnar(trace: Trace, configs: Sequence[SystemConfig],
                          name: str = "",
                          context: Optional[ColumnarContext] = None
                          ) -> List[SystemMetrics]:
    """Replay one trace under many configurations, sharing one context.

    The columnar sibling of :func:`repro.system.sweep.replay_workload`.
    """
    if context is None:
        context = ColumnarContext(trace, name)
    return [evaluate_trace_columnar(trace, config, name=name,
                                    context=context)
            for config in configs]
