"""Analytic area model (Table 3).

The paper synthesised configuration #1 with Leonardo Spectrum; we expose
the per-unit accounting its Table 3 implies.  Per-unit gate costs are
back-derived from Table 3a (e.g. one ALU = 300288/192 = 1564 gates), and
the structural count formulas are reverse-engineered to reproduce the
paper's unit counts for C#1 exactly:

- input muxes  = rows x (2·ALUs/line + 1)   (24 x 17 = 408)
- output muxes = rows x (ALUs/line + 1)     (24 x 9  = 216)
- physical multipliers = rows x mults/line / 4 (a multiply spans a
  four-line level, so levels share one physical unit: 24/4 = 6)
- physical LD/ST units = rows x ldst/line x 3/4 (48 x 3/4 = 36)

Configuration-bit counts (Table 3b) follow the same approach; where the
paper's number cannot be derived exactly the formula is documented and
the deviation reported in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.cgra.shape import ArrayShape


@dataclass(frozen=True)
class AreaParams:
    """Per-unit gate costs, back-derived from Table 3a."""

    alu_gates: float = 1564.0          # 300288 / 192
    mult_gates: float = 6689.0         # 40134 / 6
    ldst_gates: float = 54.67          # 1968 / 36
    input_mux_gates: float = 642.0     # 261936 / 408
    output_mux_gates: float = 272.0    # 58752 / 216
    dim_hardware_gates: float = 1024.0
    transistors_per_gate: int = 4
    #: lines spanned by one multiply / one memory level (sharing factors).
    mult_level_span: int = 4
    ldst_share_num: int = 3
    ldst_share_den: int = 4


#: transistor count of an R3000-class scalar MIPS core — the processor
#: generation the paper couples the array to.  The MPSoC budget model
#: prices plain cores with this under the same transistors-per-gate
#: convention Table 3a uses for the array.
MIPS_CORE_TRANSISTORS = 115_000


def mips_core_gates(params: AreaParams = AreaParams()) -> int:
    """Gate-equivalents of one plain MIPS core.

    The unit cost behind the ``repro.mpsoc`` Sys-S/M/L budget presets:
    an allocation of N cores and M arrays costs
    ``N * mips_core_gates() + sum of the arrays' Table 3a totals``.
    """
    return round(MIPS_CORE_TRANSISTORS / params.transistors_per_gate)


@dataclass(frozen=True)
class AreaRow:
    unit: str
    count: int
    gates: int


@dataclass(frozen=True)
class AreaReport:
    """Table 3a equivalent for one array shape."""

    rows: List[AreaRow]

    @property
    def total_gates(self) -> int:
        return sum(row.gates for row in self.rows)

    def transistors(self, params: "AreaParams" = AreaParams()) -> int:
        return self.total_gates * params.transistors_per_gate

    def as_dict(self) -> Dict[str, AreaRow]:
        return {row.unit: row for row in self.rows}


def area_report(shape: ArrayShape,
                params: AreaParams = AreaParams()) -> AreaReport:
    """Compute Table 3a for an arbitrary array shape."""
    alus = shape.rows * shape.alus_per_row
    mults = max(1, math.ceil(shape.rows * shape.mults_per_row
                             / params.mult_level_span))
    ldsts = max(1, math.ceil(shape.rows * shape.ldsts_per_row
                             * params.ldst_share_num
                             / params.ldst_share_den))
    in_muxes = shape.rows * (2 * shape.alus_per_row + 1)
    out_muxes = shape.rows * (shape.alus_per_row + 1)
    rows = [
        AreaRow("ALU", alus, round(alus * params.alu_gates)),
        AreaRow("LD/ST", ldsts, round(ldsts * params.ldst_gates)),
        AreaRow("Multiplier", mults, round(mults * params.mult_gates)),
        AreaRow("Input Mux", in_muxes,
                round(in_muxes * params.input_mux_gates)),
        AreaRow("Output Mux", out_muxes,
                round(out_muxes * params.output_mux_gates)),
        AreaRow("DIM Hardware", 1, round(params.dim_hardware_gates)),
    ]
    return AreaReport(rows)


@dataclass(frozen=True)
class ConfigBitsReport:
    """Table 3b equivalent: bits to store one configuration."""

    write_bitmap: int       # temporary, used only during detection
    resource_table: int
    reads_table: int
    writes_table: int
    context_start: int
    context_current: int
    immediate_table: int

    @property
    def stored_bits(self) -> int:
        """Bits persisted per cache slot (write bitmap excluded)."""
        return (self.resource_table + self.reads_table + self.writes_table
                + self.context_start + self.context_current
                + self.immediate_table)


def config_bits_report(shape: ArrayShape,
                       mux_select_bits: int = 4,
                       resource_bits_per_slot: int = 3,
                       context_bits: int = 40) -> ConfigBitsReport:
    """Bits per stored configuration for an array shape.

    Formulas (C#1 values in parentheses, paper's Table 3b in brackets):

    - write bitmap: one 32-register bitmap per execution level,
      rows/alu_chain levels (8x32 = 256) [256]
    - resource table: 3 bits per FU slot (24x11x3 = 792) [786]
    - reads table: 4 select bits per input mux (408x4 = 1632) [1632]
    - writes table: ~2.7 bits per output mux; we use 3 and report the
      deviation (216x3 = 648) [576]
    - context start/current: 40 bits each [40/40]
    - immediate table: 32 bits per immediate slot; the paper stores only
      four immediates (128 bits) — we default to a larger table and
      document the difference in EXPERIMENTS.md
    """
    levels = max(1, shape.rows // max(1, shape.alu_chain))
    return ConfigBitsReport(
        write_bitmap=levels * 32,
        resource_table=shape.rows * shape.columns * resource_bits_per_slot,
        reads_table=shape.rows * (2 * shape.alus_per_row + 1)
        * mux_select_bits,
        writes_table=shape.rows * (shape.alus_per_row + 1) * 3,
        context_start=context_bits,
        context_current=context_bits,
        immediate_table=shape.immediate_slots * 32,
    )


def cache_bytes(shape: ArrayShape, slots: int,
                tag_overhead_bits: int = 130) -> int:
    """Table 3c equivalent: reconfiguration-cache size in bytes."""
    per_slot = config_bits_report(shape).stored_bits + tag_overhead_bits
    return math.ceil(slots * per_slot / 8)
