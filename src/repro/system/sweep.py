"""Matrix sweep engine: trace-once / replay-many design-space evaluation.

The paper's headline results are a *matrix* — 18 workloads crossed with
~19 system configurations — but evaluating it as independent (workload,
system) cells repeats enormous amounts of work: the functional trace of
a workload is configuration-independent, the standalone-MIPS baseline
depends only on (trace, timing model), and the DIM translations of two
systems that differ only in reconfiguration-cache slots are identical.

This module evaluates the whole matrix with maximal sharing, in three
layers:

1. **Trace once per run** — each workload is simulated at most once per
   sweep no matter how many configurations replay it; cells fan out over
   a per-workload work unit (serial or across a process pool).
2. **Translation memo** — all configurations of one workload share a
   probe-validated :class:`~repro.dim.memo.TranslationMemo`, so
   configurations differing only in cache slots (or timing) reuse
   DIM translation + CGRA line allocation instead of recomputing it.
3. **Persistent artifacts** — traces, baselines and per-cell metrics are
   stored in a content-addressed on-disk cache
   (:mod:`repro.system.artifacts`) keyed by workload source, timing
   model and a fingerprint of the package source, so cold processes,
   repeated bench runs and CI skip tracing (and replaying) entirely.

All three layers are transparent: :func:`evaluate_matrix` output is
byte-identical to looping :func:`repro.workloads.suite.evaluate_suite`
over the same configurations, serial or parallel, cold or warm cache —
the test suite asserts this.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.dim.memo import TranslationMemo
from repro.obs import Telemetry
from repro.obs.schema import sweep_counters, sweep_timers
from repro.sim.coltrace import ColumnarTrace
from repro.sim.stats import TimingModel
from repro.sim.trace import Trace
from repro.system.artifacts import ArtifactCache
from repro.system.colreplay import (
    ColumnarContext,
    baseline_metrics_columnar,
    columnar_available,
    evaluate_trace_columnar,
    replay_trace_columnar,
)
from repro.system.config import (
    PAPER_CACHE_SLOTS,
    SystemConfig,
    paper_system,
)
from repro.system.energy import EnergyParams
from repro.system.traceeval import (
    SystemMetrics,
    baseline_metrics,
    evaluate_trace,
)
from repro.workloads import get_workload, run_workload, workload_names

if TYPE_CHECKING:
    from repro.workloads.suite import SuiteResult

#: in-process trace cache for traces recovered from disk artifacts
#: (run_workload keeps its own cache for traces it simulated).
_DISK_TRACES: Dict[str, Trace] = {}

#: in-process columnar contexts, one per workload; reused across sweeps
#: (and across service batches) as long as the trace object is the same.
_COL_CONTEXTS: Dict[str, ColumnarContext] = {}

#: the engine choices accepted by every replay entry point.
ENGINES = ("auto", "event", "columnar")


def _resolve_engine(engine: str, observing: bool = False
                    ) -> Tuple[str, bool]:
    """(resolved engine, fell_back): which replay engine to run.

    ``auto`` selects the columnar engine whenever numpy is importable
    and no event-level telemetry sink is attached — the columnar engine
    computes bit-identical metrics but does not emit the per-event
    engine telemetry stream, so an observing sweep keeps the event
    engine.  ``fell_back`` is True when the columnar engine was wanted
    (explicitly or by default) but numpy is unavailable; callers count
    it under ``sweep.columnar_fallback``.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown replay engine {engine!r}; "
                         f"expected one of {ENGINES}")
    if engine == "event":
        return "event", False
    available = columnar_available()
    if engine == "columnar":
        return ("columnar", False) if available else ("event", True)
    if observing:
        return "event", False
    return ("columnar", False) if available else ("event", True)


def paper_matrix() -> List[SystemConfig]:
    """Table 2's system list: C1-C3 x {no-spec, spec} x {16, 64, 256}
    slots, plus the two Ideal columns — 20 configurations."""
    configs = [paper_system(array, slots, spec)
               for array in ("C1", "C2", "C3")
               for spec in (False, True)
               for slots in PAPER_CACHE_SLOTS]
    configs += [paper_system("ideal", speculation=spec)
                for spec in (False, True)]
    return configs


# ----------------------------------------------------------------------
# Instrumentation.
# ----------------------------------------------------------------------
@dataclass
class SweepInstrumentation:
    """Phase timings and cache counters for one matrix evaluation."""

    workloads: int = 0
    systems: int = 0
    cells: int = 0
    jobs: int = 1
    #: wall-clock of the whole evaluate_matrix call.
    total_seconds: float = 0.0
    #: time spent obtaining traces (simulation or artifact load).
    #: Phase seconds are summed over pool workers, so with ``jobs > 1``
    #: they can exceed ``total_seconds``.
    trace_seconds: float = 0.0
    #: time spent replaying cells (baselines + accelerated metrics).
    replay_seconds: float = 0.0
    #: how each workload's trace was obtained.
    traces_simulated: int = 0
    traces_from_disk: int = 0
    traces_in_memory: int = 0
    #: per-cell outcome: replayed live vs served from disk artifacts.
    cells_replayed: int = 0
    cells_from_disk: int = 0
    #: of the replayed cells, how many ran on the columnar engine.
    cells_columnar: int = 0
    #: workload rows that wanted the columnar engine but fell back to
    #: the event engine because numpy is unavailable.
    columnar_fallback: int = 0
    baselines_computed: int = 0
    baselines_from_disk: int = 0
    #: translation-memo totals across all workloads.
    alloc_hits: int = 0
    alloc_misses: int = 0
    #: artifact-cache totals (trace + baseline + metrics lookups).
    artifact_hits: int = 0
    artifact_misses: int = 0
    artifact_stores: int = 0

    @property
    def alloc_hit_rate(self) -> float:
        total = self.alloc_hits + self.alloc_misses
        return self.alloc_hits / total if total else 0.0

    @property
    def artifact_hit_rate(self) -> float:
        total = self.artifact_hits + self.artifact_misses
        return self.artifact_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["alloc_hit_rate"] = self.alloc_hit_rate
        payload["artifact_hit_rate"] = self.artifact_hit_rate
        return payload

    # The legacy field names above are the back-compat aliases; the
    # canonical representation is the repro.obs counter schema.
    def counters(self) -> Dict[str, int]:
        """This record under the unified ``sweep.*`` counter schema."""
        return sweep_counters(self)

    def timer_values(self) -> Dict[str, float]:
        """Phase timings under the unified ``sweep.*`` timer schema."""
        return sweep_timers(self)

    def merge_counters(self, other: "SweepInstrumentation") -> None:
        """Fold a worker's counters into this (parent) record."""
        for name in ("trace_seconds", "replay_seconds",
                     "traces_simulated", "traces_from_disk",
                     "traces_in_memory", "cells_replayed",
                     "cells_from_disk", "cells_columnar",
                     "columnar_fallback", "baselines_computed",
                     "baselines_from_disk", "alloc_hits", "alloc_misses",
                     "artifact_hits", "artifact_misses",
                     "artifact_stores"):
            setattr(self, name, getattr(self, name) + getattr(other, name))


# ----------------------------------------------------------------------
# Artifact keys.
# ----------------------------------------------------------------------
#: the timing model the functional tracer runs under (traces themselves
#: are timing-independent, but the key records the model for provenance
#: and forward-compatibility with configurable tracers).
TRACE_TIMING = TimingModel()


def trace_artifact_key(cache: ArtifactCache, name: str) -> str:
    source = get_workload(name).source
    return cache.key("trace", name, source, TRACE_TIMING)


def baseline_artifact_key(cache: ArtifactCache, name: str,
                          timing: TimingModel) -> str:
    source = get_workload(name).source
    return cache.key("baseline", name, source, TRACE_TIMING, timing)


def metrics_artifact_key(cache: ArtifactCache, name: str,
                         config: SystemConfig) -> str:
    source = get_workload(name).source
    return cache.key("metrics", name, source, TRACE_TIMING, config)


def coltrace_artifact_key(cache: ArtifactCache, name: str) -> str:
    """Key of the persisted columnar lowering (event columns plus the
    predictor timelines built so far)."""
    source = get_workload(name).source
    return cache.key("coltrace", name, source, TRACE_TIMING)


# ----------------------------------------------------------------------
# Trace acquisition (layer 1 + layer 3).
# ----------------------------------------------------------------------
def _obtain_trace(name: str, fast: bool, cache: Optional[ArtifactCache],
                  inst: SweepInstrumentation) -> Trace:
    """One workload's trace: in-process cache, disk artifact, or trace."""
    from repro.workloads import _RUNS  # the run_workload cache

    start = time.perf_counter()
    try:
        cached_run = _RUNS.get(name)
        if cached_run is not None:
            inst.traces_in_memory += 1
            return cached_run.trace
        cached_trace = _DISK_TRACES.get(name)
        if cached_trace is not None:
            inst.traces_in_memory += 1
            return cached_trace
        if cache is not None:
            key = trace_artifact_key(cache, name)
            trace = cache.load_trace(key)
            if trace is not None:
                _DISK_TRACES[name] = trace
                inst.traces_from_disk += 1
                return trace
        trace = run_workload(name, fast=fast).trace
        inst.traces_simulated += 1
        if cache is not None:
            cache.store_trace(key, trace)
        return trace
    finally:
        inst.trace_seconds += time.perf_counter() - start


# ----------------------------------------------------------------------
# Replay (layer 2 + layer 3).
# ----------------------------------------------------------------------
def replay_workload(trace: Trace, configs: Sequence[SystemConfig],
                    memo: Optional[TranslationMemo] = None,
                    name: str = "",
                    engine: str = "auto") -> List[SystemMetrics]:
    """Replay one trace under many configurations with shared
    translations.  Results are identical to independent
    :func:`evaluate_trace` calls, whichever engine runs."""
    resolved, _ = _resolve_engine(engine)
    if resolved == "columnar":
        return replay_trace_columnar(trace, configs, name=name)
    memo = memo if memo is not None else TranslationMemo()
    return [evaluate_trace(trace, config, name=name, memo=memo)
            for config in configs]


def replay_matrix(traces: Mapping[str, Trace],
                  configs: Sequence[SystemConfig],
                  cache: Optional[ArtifactCache] = None,
                  engine: str = "auto"
                  ) -> Dict[Tuple[str, int], SystemMetrics]:
    """Metrics for every (workload, configuration index) cell.

    The metrics-level sibling of :func:`evaluate_matrix`, used by the
    benchmark harnesses that aggregate raw :class:`SystemMetrics`.
    Traces must be supplied; per-cell metrics are shared through the
    disk cache when the trace belongs to a named workload.
    """
    known = set(workload_names())
    resolved, _ = _resolve_engine(engine)
    results: Dict[Tuple[str, int], SystemMetrics] = {}
    for name, trace in traces.items():
        cacheable = cache is not None and name in known
        keys = [metrics_artifact_key(cache, name, config)
                if cacheable else None for config in configs]
        memo: Optional[TranslationMemo] = None
        context: Optional[ColumnarContext] = None
        for index, config in enumerate(configs):
            metrics = cache.load(keys[index]) if cacheable else None
            if metrics is None:
                if resolved == "columnar":
                    if context is None:
                        context = ColumnarContext(trace, name=name)
                    metrics = evaluate_trace_columnar(trace, config,
                                                      name=name,
                                                      context=context)
                else:
                    if memo is None:
                        memo = TranslationMemo()
                    metrics = evaluate_trace(trace, config, name=name,
                                             memo=memo)
                if cacheable:
                    cache.store(keys[index], metrics)
            results[(name, index)] = metrics
    return results


def _sweep_workload(name: str, configs: Sequence[SystemConfig],
                    fast: bool, cache: Optional[ArtifactCache],
                    telemetry=None, engine: str = "auto"
                    ) -> Tuple[Dict[TimingModel, SystemMetrics],
                               List[SystemMetrics], SweepInstrumentation]:
    """All cells of one workload row, with maximal sharing.

    Returns the per-timing baselines, one accelerated metrics per
    configuration, and the row's instrumentation counters.  An injected
    ``telemetry`` sink receives one ``sweep.cell_replayed`` event per
    live cell plus (on the event engine) the engine-level event stream
    of each replay; it never changes the metrics.
    """
    inst = SweepInstrumentation()
    trace: Optional[Trace] = None
    observing = telemetry is not None and telemetry.enabled
    resolved, fell_back = _resolve_engine(engine, observing)
    if fell_back:
        inst.columnar_fallback += 1

    def ensure_trace() -> Trace:
        nonlocal trace
        if trace is None:
            trace = _obtain_trace(name, fast, cache, inst)
        return trace

    # shared columnar state: one lowered trace + translation caches per
    # workload, reused across sweeps while the trace object persists,
    # seeded from (and persisted back to) the artifact cache.
    context: Optional[ColumnarContext] = None
    coltrace_loaded = False
    timelines_loaded = 0

    def ensure_context() -> ColumnarContext:
        nonlocal context, coltrace_loaded, timelines_loaded
        if context is None:
            body = ensure_trace()
            cached_context = _COL_CONTEXTS.get(name)
            if cached_context is not None and cached_context.trace is body:
                context = cached_context
                coltrace_loaded = True
                timelines_loaded = context.coltrace.timelines_built
                return context
            coltrace: Optional[ColumnarTrace] = None
            if cache is not None:
                payload = cache.load(coltrace_artifact_key(cache, name))
                if payload is not None:
                    coltrace = ColumnarTrace.from_payload(body, payload)
            coltrace_loaded = coltrace is not None
            context = ColumnarContext(body, name=name, coltrace=coltrace)
            timelines_loaded = context.coltrace.timelines_built
            _COL_CONTEXTS[name] = context
        return context

    # accelerated metrics, one per configuration, disk-cached per cell
    cell_metrics: List[Optional[SystemMetrics]] = []
    memo: Optional[TranslationMemo] = None
    for config in configs:
        metrics = None
        if cache is not None:
            metrics = cache.load(metrics_artifact_key(cache, name, config))
        if metrics is not None:
            inst.cells_from_disk += 1
        cell_metrics.append(metrics)
    for index, config in enumerate(configs):
        if cell_metrics[index] is not None:
            continue
        replay_start = time.perf_counter()
        if resolved == "columnar":
            ctx = ensure_context()
            metrics = evaluate_trace_columnar(ctx.trace, config,
                                              name=name, context=ctx)
            inst.cells_columnar += 1
        else:
            body = ensure_trace()
            if memo is None:
                memo = TranslationMemo()
            metrics = evaluate_trace(body, config, name=name, memo=memo,
                                     telemetry=telemetry)
        inst.replay_seconds += time.perf_counter() - replay_start
        inst.cells_replayed += 1
        if observing:
            telemetry.emit("sweep.cell_replayed", workload=name,
                           system=config.name, cycles=metrics.cycles)
        if cache is not None:
            cache.store(metrics_artifact_key(cache, name, config),
                        metrics)
        cell_metrics[index] = metrics

    # baselines, one per distinct core timing model
    baselines: Dict[TimingModel, SystemMetrics] = {}
    for config in configs:
        if config.timing in baselines:
            continue
        base = None
        if cache is not None:
            base = cache.load(
                baseline_artifact_key(cache, name, config.timing))
        if base is None:
            replay_start = time.perf_counter()
            if resolved == "columnar":
                base = baseline_metrics_columnar(ensure_context(),
                                                 config.timing)
            else:
                base = baseline_metrics(ensure_trace(), config.timing)
            inst.replay_seconds += time.perf_counter() - replay_start
            inst.baselines_computed += 1
            if cache is not None:
                cache.store(
                    baseline_artifact_key(cache, name, config.timing),
                    base)
        else:
            inst.baselines_from_disk += 1
        baselines[config.timing] = base

    if memo is not None:
        inst.alloc_hits += memo.hits
        inst.alloc_misses += memo.misses
    if context is not None:
        inst.alloc_hits += context.alloc_hits
        inst.alloc_misses += context.alloc_misses
        context.alloc_hits = 0
        context.alloc_misses = 0
        if cache is not None and (
                not coltrace_loaded
                or context.coltrace.timelines_built != timelines_loaded):
            cache.store(coltrace_artifact_key(cache, name),
                        context.coltrace.to_payload())
    if cache is not None:
        inst.artifact_hits += cache.hits
        inst.artifact_misses += cache.misses
        inst.artifact_stores += cache.stores
    return baselines, cell_metrics, inst


def _matrix_worker(args):
    """Process-pool entry point: one workload row of the matrix.

    When telemetry is requested the worker collects into a private
    :class:`~repro.obs.Telemetry` and returns its plain-data payload;
    the parent re-emits in task order, so the merged stream is
    deterministic regardless of worker scheduling.
    """
    name, configs, fast, cache_root, events_max, engine = args
    cache = ArtifactCache(cache_root) if cache_root is not None else None
    telemetry = Telemetry(events_max) if events_max is not None else None
    baselines, cell_metrics, inst = _sweep_workload(name, configs, fast,
                                                    cache, telemetry,
                                                    engine=engine)
    payload = telemetry.export_payload() if telemetry is not None else None
    return name, baselines, cell_metrics, inst, payload


# ----------------------------------------------------------------------
# The matrix API.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MatrixResult:
    """Everything one matrix evaluation produced."""

    names: List[str]
    suites: List[SuiteResult]
    instrumentation: SweepInstrumentation = field(
        default_factory=SweepInstrumentation)
    #: the telemetry sink passed to evaluate_matrix, if any.
    telemetry: Optional[Telemetry] = None

    def suite(self, system: str) -> SuiteResult:
        for candidate in self.suites:
            if candidate.system == system:
                return candidate
        raise KeyError(f"no system {system!r} in this matrix")

    def results_json(self) -> str:
        """Deterministic report of the matrix results.

        Byte-identical across serial/parallel execution and cold/warm
        artifact caches; instrumentation (which carries timings) is
        deliberately excluded — see :meth:`instrumentation_json`.
        """
        return json.dumps({
            "workloads": self.names,
            "systems": [{
                "system": suite.system,
                "geomean_speedup": suite.geomean_speedup,
                "geomean_energy_ratio": suite.geomean_energy_ratio,
                "results": [r.as_dict() for r in suite.results],
            } for suite in self.suites],
        }, indent=2)

    def instrumentation_json(self) -> str:
        return json.dumps(self.instrumentation.as_dict(), indent=2)

    def telemetry_json(self) -> str:
        """The run's telemetry under the unified ``repro.obs`` schema.

        Works whether or not a sink was injected: without one, the
        sweep instrumentation counters are projected onto the schema on
        the fly (with an empty event stream).
        """
        telemetry = self.telemetry
        if telemetry is None or not telemetry.enabled:
            telemetry = Telemetry(max_events=None)
            telemetry.count_many(self.instrumentation.counters())
            for name, secs in self.instrumentation.timer_values().items():
                telemetry.add_time(name, secs)
        return telemetry.to_json()


def matrix_slice(matrix: MatrixResult,
                 configs: Sequence[SystemConfig]) -> MatrixResult:
    """The sub-matrix of ``matrix`` covering exactly ``configs``.

    This is the batch-replay entry point the evaluation service
    (:mod:`repro.serve`) builds on: one superset matrix is evaluated
    for a whole coalesced batch, then each job's result is sliced out.
    Because :func:`evaluate_matrix` cells are independent of which
    other configurations share the matrix, the slice's
    :meth:`MatrixResult.results_json` is byte-identical to evaluating
    only ``configs`` (or to looping :func:`evaluate_suite`) — the
    differential tests in ``tests/test_serve.py`` enforce this.

    Raises :class:`KeyError` if a requested configuration was not part
    of ``matrix``.  Instrumentation is shared with the parent matrix
    (it describes the evaluation that actually ran, not the slice).
    """
    suites = [matrix.suite(config.name) for config in configs]
    return MatrixResult(names=list(matrix.names), suites=suites,
                        instrumentation=matrix.instrumentation,
                        telemetry=matrix.telemetry)


def evaluate_matrix(configs: Sequence[SystemConfig],
                    names: Optional[Iterable[str]] = None,
                    energy_params: EnergyParams = EnergyParams(),
                    jobs: int = 1,
                    fast: bool = False,
                    cache: Optional[ArtifactCache] = None,
                    cache_dir: Optional[Path] = None,
                    telemetry: Optional[Telemetry] = None,
                    engine: str = "auto") -> MatrixResult:
    """Evaluate the full workloads x configurations matrix.

    Per-configuration rows of the result are byte-identical (as JSON) to
    ``evaluate_suite(config, names)`` — the sharing layers never change
    numbers, only wall-clock.  ``jobs > 1`` fans workload rows across a
    process pool.  Pass ``cache`` (or ``cache_dir``) to persist and
    reuse trace/baseline/metrics artifacts across processes.  Pass
    ``telemetry`` to collect the unified event stream and counters
    (:mod:`repro.obs`); results are identical with or without it, for
    any ``jobs``.  ``engine`` selects the replay implementation (see
    :func:`_resolve_engine`); every engine produces identical results.
    """
    # deferred to dodge the repro.workloads.suite <-> repro.system cycle
    from repro.workloads.suite import SuiteResult, result_from_metrics

    start = time.perf_counter()
    if engine not in ENGINES:
        raise ValueError(f"unknown replay engine {engine!r}; "
                         f"expected one of {ENGINES}")
    if cache is None and cache_dir is not None:
        cache = ArtifactCache(cache_dir)
    configs = list(configs)
    names = list(names) if names is not None else workload_names()
    inst = SweepInstrumentation(workloads=len(names), systems=len(configs),
                                cells=len(names) * len(configs),
                                jobs=max(1, jobs))
    observing = telemetry is not None and telemetry.enabled

    rows: Dict[str, Tuple[Dict[TimingModel, SystemMetrics],
                          List[SystemMetrics]]] = {}
    if jobs > 1 and len(names) > 1:
        from concurrent.futures import ProcessPoolExecutor

        events_max = None
        if observing:
            events_max = (telemetry.events.max_events
                          if telemetry.events is not None else 0)
        tasks = [(name, configs, fast,
                  cache.root if cache is not None else None, events_max,
                  engine)
                 for name in names]
        with ProcessPoolExecutor(max_workers=min(jobs, len(names))) as pool:
            for name, baselines, cells, row_inst, payload in pool.map(
                    _matrix_worker, tasks):
                rows[name] = (baselines, cells)
                inst.merge_counters(row_inst)
                if observing and payload is not None:
                    telemetry.absorb(*payload)
    else:
        for name in names:
            baselines, cells, row_inst = _sweep_workload(
                name, configs, fast, cache, telemetry, engine=engine)
            rows[name] = (baselines, cells)
            inst.merge_counters(row_inst)

    suites = []
    for index, config in enumerate(configs):
        results = []
        for name in names:
            baselines, cells = rows[name]
            results.append(result_from_metrics(
                name, config, baselines[config.timing], cells[index],
                energy_params))
        suites.append(SuiteResult(config.name, results))
    inst.total_seconds = time.perf_counter() - start
    if observing:
        telemetry.count_many(inst.counters())
        for timer_name, seconds in inst.timer_values().items():
            telemetry.add_time(timer_name, seconds)
    return MatrixResult(names=names, suites=suites, instrumentation=inst,
                        telemetry=telemetry)
