"""The paper's system configurations (Table 1) and a bundling helper."""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, Optional

from repro.cgra.shape import (
    ArrayShape,
    INFINITE_SHAPE,
    default_immediate_slots,
)
from repro.dim.params import DimParams
from repro.sim.stats import TimingModel

#: Table 1 — the three array configurations evaluated in the paper.
#: "#Columns" is the per-line FU total (8+1+2=11, 8+2+6=16, 12+2+6=20).
#: Immediate-table capacity scales with the array (two slots per line) so
#: that lines, not immediates, are the binding resource — the paper never
#: reports immediate-table saturation.
PAPER_SHAPES: Dict[str, ArrayShape] = {
    "C1": ArrayShape(rows=24, alus_per_row=8, mults_per_row=1,
                     ldsts_per_row=2, immediate_slots=48),
    "C2": ArrayShape(rows=48, alus_per_row=8, mults_per_row=2,
                     ldsts_per_row=6, immediate_slots=96),
    "C3": ArrayShape(rows=150, alus_per_row=12, mults_per_row=2,
                     ldsts_per_row=6, immediate_slots=300),
    "ideal": INFINITE_SHAPE,
}

#: The reconfiguration-cache sizes swept in Table 2.
PAPER_CACHE_SLOTS = (16, 64, 256)


@dataclass(frozen=True)
class SystemConfig:
    """A complete system: array shape, DIM policies, core timing."""

    shape: ArrayShape
    dim: DimParams = field(default_factory=DimParams)
    timing: TimingModel = field(default_factory=TimingModel)
    name: str = ""

    def with_dim(self, **kwargs) -> "SystemConfig":
        return replace(self, dim=replace(self.dim, **kwargs))


def paper_system(array: str = "C3", slots: int = 64,
                 speculation: bool = False) -> SystemConfig:
    """Build one of the paper's evaluated systems.

    ``array`` is 'C1', 'C2', 'C3' or 'ideal'; ``slots`` is the
    reconfiguration-cache size (the ideal system gets an effectively
    unbounded cache, matching the paper's "infinite hardware resources"
    column).  An unknown array name raises :class:`ValueError` naming
    the valid choices.
    """
    shape = PAPER_SHAPES.get(array)
    if shape is None:
        valid = ", ".join(sorted(PAPER_SHAPES))
        raise ValueError(
            f"unknown array {array!r}: valid array names are {valid}")
    if array == "ideal":
        slots = 1 << 20
    dim = DimParams(cache_slots=slots, speculation=speculation)
    spec_tag = "spec" if speculation else "nospec"
    return SystemConfig(shape, dim, TimingModel(),
                        name=f"{array}/{slots}/{spec_tag}")


def custom_name(shape: ArrayShape, dim: DimParams) -> str:
    """The canonical name of an arbitrary (shape, dim) system.

    The scheme is injective over (shape, dim): the geometry is always
    spelled out, shape timing fields appear only when they differ from
    the :class:`ArrayShape` defaults (immediate slots: from the
    two-per-line convention), and DIM policy fields beyond
    slots/speculation ride in a sorted ``+key=value`` suffix.  Two
    different systems can therefore never collide, which is what lets
    the matrix engine and the evaluation service deduplicate and slice
    configurations by name alone.
    """
    base = (f"r{shape.rows}x{shape.alus_per_row}a"
            f"{shape.mults_per_row}m{shape.ldsts_per_row}l")
    if shape.immediate_slots != default_immediate_slots(shape.rows):
        base += f"-i{shape.immediate_slots}"
    defaults = ArrayShape(rows=shape.rows,
                          alus_per_row=shape.alus_per_row,
                          mults_per_row=shape.mults_per_row,
                          ldsts_per_row=shape.ldsts_per_row)
    if shape.alu_chain != defaults.alu_chain:
        base += f"-c{shape.alu_chain}"
    if (shape.rf_read_ports != defaults.rf_read_ports
            or shape.rf_write_ports != defaults.rf_write_ports):
        base += f"-p{shape.rf_read_ports}.{shape.rf_write_ports}"
    spec_tag = "spec" if dim.speculation else "nospec"
    name = f"{base}/{dim.cache_slots}/{spec_tag}"
    dim_defaults = DimParams(cache_slots=dim.cache_slots,
                             speculation=dim.speculation)
    extras = sorted(
        (f.name, getattr(dim, f.name)) for f in fields(DimParams)
        if getattr(dim, f.name) != getattr(dim_defaults, f.name))
    if extras:
        name += "+" + ",".join(f"{key}={value}"
                               for key, value in extras)
    return name


def custom_system(shape: ArrayShape, dim: Optional[DimParams] = None,
                  timing: Optional[TimingModel] = None) -> SystemConfig:
    """Build a system around an arbitrary array shape.

    The constructor behind every design-space exploration point
    (:mod:`repro.dse`): any geometry, any DIM policy, canonically named
    via :func:`custom_name` so distinct systems never share a name.
    """
    dim = dim if dim is not None else DimParams()
    return SystemConfig(shape, dim,
                        timing if timing is not None else TimingModel(),
                        name=custom_name(shape, dim))
