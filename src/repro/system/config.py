"""The paper's system configurations (Table 1) and the canonical
:class:`SystemSpec` every entry point builds them from.

Historically a system configuration was constructed two parallel ways:
``repro.api.build_config`` took Table 1 array names, while the serve
protocol's ``config_from_spec`` took shape-form wire dicts for DSE
dispatch.  :class:`SystemSpec` unifies both: one frozen,
JSON-round-trippable value that names either a paper array or an
arbitrary geometry (plus DIM policy overrides) and builds exactly the
:class:`SystemConfig` — same canonical name, same bits — the two old
paths produced.  The CLI, the serve protocol, the DSE runners and the
MPSoC scenario layer all route through it; ``build_config`` and
``config_from_spec`` remain as thin deprecated shims.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.cgra.shape import (
    ArrayShape,
    INFINITE_SHAPE,
    default_immediate_slots,
)
from repro.dim.params import DimParams
from repro.sim.stats import TimingModel

#: Table 1 — the three array configurations evaluated in the paper.
#: "#Columns" is the per-line FU total (8+1+2=11, 8+2+6=16, 12+2+6=20).
#: Immediate-table capacity scales with the array (two slots per line) so
#: that lines, not immediates, are the binding resource — the paper never
#: reports immediate-table saturation.
PAPER_SHAPES: Dict[str, ArrayShape] = {
    "C1": ArrayShape(rows=24, alus_per_row=8, mults_per_row=1,
                     ldsts_per_row=2, immediate_slots=48),
    "C2": ArrayShape(rows=48, alus_per_row=8, mults_per_row=2,
                     ldsts_per_row=6, immediate_slots=96),
    "C3": ArrayShape(rows=150, alus_per_row=12, mults_per_row=2,
                     ldsts_per_row=6, immediate_slots=300),
    "ideal": INFINITE_SHAPE,
}

#: The reconfiguration-cache sizes swept in Table 2.
PAPER_CACHE_SLOTS = (16, 64, 256)


@dataclass(frozen=True)
class SystemConfig:
    """A complete system: array shape, DIM policies, core timing."""

    shape: ArrayShape
    dim: DimParams = field(default_factory=DimParams)
    timing: TimingModel = field(default_factory=TimingModel)
    name: str = ""

    def with_dim(self, **kwargs) -> "SystemConfig":
        return replace(self, dim=replace(self.dim, **kwargs))


def paper_system(array: str = "C3", slots: int = 64,
                 speculation: bool = False) -> SystemConfig:
    """Build one of the paper's evaluated systems.

    ``array`` is 'C1', 'C2', 'C3' or 'ideal'; ``slots`` is the
    reconfiguration-cache size (the ideal system gets an effectively
    unbounded cache, matching the paper's "infinite hardware resources"
    column).  An unknown array name raises :class:`ValueError` naming
    the valid choices.
    """
    shape = PAPER_SHAPES.get(array)
    if shape is None:
        valid = ", ".join(sorted(PAPER_SHAPES))
        raise ValueError(
            f"unknown array {array!r}: valid array names are {valid}")
    if array == "ideal":
        slots = 1 << 20
    dim = DimParams(cache_slots=slots, speculation=speculation)
    spec_tag = "spec" if speculation else "nospec"
    return SystemConfig(shape, dim, TimingModel(),
                        name=f"{array}/{slots}/{spec_tag}")


def custom_name(shape: ArrayShape, dim: DimParams) -> str:
    """The canonical name of an arbitrary (shape, dim) system.

    The scheme is injective over (shape, dim): the geometry is always
    spelled out, shape timing fields appear only when they differ from
    the :class:`ArrayShape` defaults (immediate slots: from the
    two-per-line convention), and DIM policy fields beyond
    slots/speculation ride in a sorted ``+key=value`` suffix.  Two
    different systems can therefore never collide, which is what lets
    the matrix engine and the evaluation service deduplicate and slice
    configurations by name alone.
    """
    base = (f"r{shape.rows}x{shape.alus_per_row}a"
            f"{shape.mults_per_row}m{shape.ldsts_per_row}l")
    if shape.immediate_slots != default_immediate_slots(shape.rows):
        base += f"-i{shape.immediate_slots}"
    defaults = ArrayShape(rows=shape.rows,
                          alus_per_row=shape.alus_per_row,
                          mults_per_row=shape.mults_per_row,
                          ldsts_per_row=shape.ldsts_per_row)
    if shape.alu_chain != defaults.alu_chain:
        base += f"-c{shape.alu_chain}"
    if (shape.rf_read_ports != defaults.rf_read_ports
            or shape.rf_write_ports != defaults.rf_write_ports):
        base += f"-p{shape.rf_read_ports}.{shape.rf_write_ports}"
    spec_tag = "spec" if dim.speculation else "nospec"
    name = f"{base}/{dim.cache_slots}/{spec_tag}"
    dim_defaults = DimParams(cache_slots=dim.cache_slots,
                             speculation=dim.speculation)
    extras = sorted(
        (f.name, getattr(dim, f.name)) for f in fields(DimParams)
        if getattr(dim, f.name) != getattr(dim_defaults, f.name))
    if extras:
        name += "+" + ",".join(f"{key}={value}"
                               for key, value in extras)
    return name


def custom_system(shape: ArrayShape, dim: Optional[DimParams] = None,
                  timing: Optional[TimingModel] = None) -> SystemConfig:
    """Build a system around an arbitrary array shape.

    The constructor behind every design-space exploration point
    (:mod:`repro.dse`): any geometry, any DIM policy, canonically named
    via :func:`custom_name` so distinct systems never share a name.
    """
    dim = dim if dim is not None else DimParams()
    return SystemConfig(shape, dim,
                        timing if timing is not None else TimingModel(),
                        name=custom_name(shape, dim))


#: ArrayShape field names in declaration order — the key set of a
#: :class:`SystemSpec` wire ``"shape"`` object.
SPEC_SHAPE_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in fields(ArrayShape))

#: DimParams fields a :class:`SystemSpec` may override beyond the
#: top-level ``slots``/``speculation`` pair.
SPEC_DIM_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in fields(DimParams)
    if f.name not in ("cache_slots", "speculation"))


@dataclass(frozen=True)
class SystemSpec:
    """The one canonical, JSON-round-trippable system description.

    Exactly one of ``array`` (a Table 1 name: C1/C2/C3/ideal) or
    ``shape`` (an arbitrary :class:`~repro.cgra.shape.ArrayShape`) is
    set.  ``slots``/``speculation`` are the reconfiguration-cache size
    and speculation switch; ``dim_extras`` carries any further
    :class:`~repro.dim.params.DimParams` overrides as sorted
    ``(name, value)`` pairs (shape form only, mirroring the serve wire
    protocol).  :meth:`build` produces the identically-named
    :class:`SystemConfig` that :func:`paper_system` /
    :func:`custom_system` always did, so specs, wire dicts and configs
    agree on names by construction.
    """

    array: Optional[str] = None
    shape: Optional[ArrayShape] = None
    slots: int = 64
    speculation: bool = False
    dim_extras: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self):
        if (self.array is None) == (self.shape is None):
            raise ValueError(
                "a SystemSpec names exactly one of array= or shape=")
        if self.array is not None and self.array not in PAPER_SHAPES:
            valid = ", ".join(sorted(PAPER_SHAPES))
            raise ValueError(f"unknown array {self.array!r}: valid "
                             f"array names are {valid}")
        if self.shape is not None and not isinstance(self.shape,
                                                     ArrayShape):
            raise ValueError("shape must be an ArrayShape")
        if not (isinstance(self.slots, int)
                and not isinstance(self.slots, bool) and self.slots > 0):
            raise ValueError("slots must be a positive integer")
        if not isinstance(self.speculation, bool):
            raise ValueError("speculation must be a boolean")
        extras = tuple(sorted(self.dim_extras))
        for name, _ in extras:
            if name not in SPEC_DIM_FIELDS:
                raise ValueError(
                    f"unknown dim extra {name!r}: valid extras are "
                    f"{', '.join(SPEC_DIM_FIELDS)} (slots/speculation "
                    f"are top-level fields)")
        if extras and self.array is not None:
            raise ValueError("dim extras require the shape form")
        object.__setattr__(self, "dim_extras", extras)

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, shape: ArrayShape,
           dim: Optional[DimParams] = None) -> "SystemSpec":
        """The spec denoting ``custom_system(shape, dim)`` — DimParams
        decomposed into slots/speculation plus non-default extras."""
        dim = dim if dim is not None else DimParams()
        defaults = DimParams(cache_slots=dim.cache_slots,
                             speculation=dim.speculation)
        extras = tuple(sorted(
            (f.name, getattr(dim, f.name)) for f in fields(DimParams)
            if getattr(dim, f.name) != getattr(defaults, f.name)))
        return cls(shape=shape, slots=dim.cache_slots,
                   speculation=dim.speculation, dim_extras=extras)

    def dim(self) -> DimParams:
        """The complete DimParams this spec pins."""
        return DimParams(cache_slots=self.slots,
                         speculation=self.speculation,
                         **dict(self.dim_extras))

    def build(self, timing: Optional[TimingModel] = None) -> SystemConfig:
        """The :class:`SystemConfig` this spec denotes.

        Names are exactly the historical ones — ``C2/64/spec`` for
        paper arrays (the ideal system keeps its unbounded-cache
        convention), :func:`custom_name` geometry names for shapes — so
        matrix slicing and serve coalescing by name keep working.
        """
        if self.array is not None:
            config = paper_system(self.array, self.slots,
                                  self.speculation)
            if timing is not None:
                config = replace(config, timing=timing)
            return config
        return custom_system(self.shape, self.dim(), timing=timing)

    @property
    def name(self) -> str:
        """The canonical configuration name (injective over specs)."""
        return self.build().name

    # ------------------------------------------------------------------
    # JSON round-trip (the serve wire config-object form).
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        if self.array is not None:
            return {"array": self.array, "slots": self.slots,
                    "speculation": self.speculation}
        payload: Dict[str, object] = {
            "shape": {name: getattr(self.shape, name)
                      for name in SPEC_SHAPE_FIELDS},
            "slots": self.slots,
            "speculation": self.speculation,
        }
        if self.dim_extras:
            payload["dim"] = dict(self.dim_extras)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SystemSpec":
        """Parse the wire form; raises :class:`ValueError` on bad input
        (the serve protocol wraps this with its structured-error
        vocabulary)."""
        if not isinstance(payload, Mapping):
            raise ValueError("a system spec must be a JSON object")
        unknown = set(payload) - {"array", "shape", "slots",
                                  "speculation", "dim"}
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        slots = payload.get("slots", 64)
        speculation = payload.get("speculation", False)
        if "shape" in payload:
            if "array" in payload:
                raise ValueError("array and shape are mutually "
                                 "exclusive")
            raw = payload["shape"]
            if not isinstance(raw, Mapping):
                raise ValueError("shape must be an object")
            bad = set(raw) - set(SPEC_SHAPE_FIELDS)
            if bad:
                raise ValueError(
                    f"shape has unknown fields: {sorted(bad)}")
            missing = [name for name in ("rows", "alus_per_row",
                                         "mults_per_row",
                                         "ldsts_per_row")
                       if name not in raw]
            if missing:
                raise ValueError(
                    f"shape is missing {', '.join(missing)}")
            values = dict(raw)
            if "immediate_slots" not in values:
                values["immediate_slots"] = default_immediate_slots(
                    int(values["rows"]))
            shape = ArrayShape(**values)
            extras = payload.get("dim", {})
            if not isinstance(extras, Mapping):
                raise ValueError("dim must be an object")
            return cls(shape=shape, slots=slots, speculation=speculation,
                       dim_extras=tuple(sorted(extras.items())))
        if "dim" in payload:
            raise ValueError("dim extras require the shape form")
        return cls(array=payload.get("array", "C3"), slots=slots,
                   speculation=speculation)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SystemSpec":
        return cls.from_dict(json.loads(text))
