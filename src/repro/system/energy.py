"""Event-based power/energy model (Figures 5 and 6).

The paper measured power with PowerCompiler on a TSMC 0.18u netlist; we
substitute an event-energy model with per-event costs chosen to match the
*relative* magnitudes the paper reports (see DESIGN.md).  The model
charges the five components Figure 5 separates:

- **core** — pipeline, register file and control, per cycle;
- **imem** — instruction-memory read per fetched instruction (array-
  covered instructions are *not* fetched: their encodings come from the
  reconfiguration cache, the paper's third energy-saving mechanism);
- **dmem** — data-memory access per committed load/store;
- **array** — functional-unit and interconnect activity plus the
  reconfiguration-cache traffic;
- **bt** — the DIM detection hardware and its predictor.

Energies are in picojoules per event; absolute values are calibrated, not
measured, so only ratios are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.system.traceeval import SystemMetrics


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies (pJ)."""

    #: pipeline + register file + clocking, per executed cycle.
    core_cycle: float = 120.0
    #: instruction-memory read, per fetched instruction.
    ifetch: float = 136.0
    #: data-memory access, per committed load or store.
    dmem_access: float = 190.0
    #: one ALU/shift operation in the array.
    array_alu_op: float = 16.0
    #: one multiply in the array.
    array_mult_op: float = 110.0
    #: one load/store unit activation (memory energy charged separately).
    array_mem_op: float = 24.0
    #: array interconnect + static, per powered line per active cycle.
    #: (48 lines x 2.9167 = 140 pJ/cycle for configuration #2, the value
    #: the Figure 6 calibration was performed at.)
    array_line_cycle: float = 2.9167
    #: when True, unused lines are switched off during execution — the
    #: paper's stated future work ("techniques to switch off functional
    #: units when they are being not used").
    fu_gating: bool = False
    #: reconfiguration-cache read, per array execution.
    rc_read: float = 190.0
    #: reconfiguration-cache write, per stored configuration.
    rc_write: float = 400.0
    #: DIM translation logic, per analysed instruction.
    bt_per_instruction: float = 14.0
    #: bimodal predictor read+update, per resolved branch.
    predictor_update: float = 3.0


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy per component, in picojoules."""

    core: float
    imem: float
    dmem: float
    array: float
    bt: float
    cycles: int

    @property
    def total(self) -> float:
        return self.core + self.imem + self.dmem + self.array + self.bt

    @property
    def power_per_cycle(self) -> float:
        """Average energy per cycle — Figure 5's 'power consumed by cycle'."""
        return self.total / self.cycles if self.cycles else 0.0

    def component_power(self) -> dict:
        """Per-component average power (energy/cycle), Figure 5's stacks."""
        if not self.cycles:
            return {"core": 0.0, "imem": 0.0, "dmem": 0.0, "array": 0.0,
                    "bt": 0.0}
        return {
            "core": self.core / self.cycles,
            "imem": self.imem / self.cycles,
            "dmem": self.dmem / self.cycles,
            "array": self.array / self.cycles,
            "bt": self.bt / self.cycles,
        }


def energy_of(metrics: SystemMetrics,
              params: EnergyParams = EnergyParams()) -> EnergyBreakdown:
    """Total energy of one run, from its metrics.

    Works for both the standalone MIPS (``metrics.dim is None``) and the
    coupled system.
    """
    core = metrics.cycles * params.core_cycle
    imem = metrics.fetches * params.ifetch
    dmem = (metrics.loads + metrics.stores) * params.dmem_access
    array = 0.0
    bt = 0.0
    dim = metrics.dim
    if dim is not None:
        line_cycles = dim.array_line_cycles if params.fu_gating \
            else dim.array_potential_line_cycles
        array = (dim.array_alu_ops * params.array_alu_op
                 + dim.array_mult_ops * params.array_mult_op
                 + dim.array_mem_ops * params.array_mem_op
                 + line_cycles * params.array_line_cycle
                 + dim.array_executions * params.rc_read
                 + dim.config_writes * params.rc_write)
        bt = (dim.translated_instructions * params.bt_per_instruction
              + metrics.branches * params.predictor_update)
    return EnergyBreakdown(core=core, imem=imem, dmem=dmem, array=array,
                           bt=bt, cycles=metrics.cycles)


def energy_ratio(baseline: SystemMetrics, accelerated: SystemMetrics,
                 params: EnergyParams = EnergyParams()) -> float:
    """How many times less energy the accelerated system uses (Fig. 6)."""
    base = energy_of(baseline, params).total
    accel = energy_of(accelerated, params).total
    return base / accel if accel else 0.0


def iso_performance_energy_ratio(baseline: SystemMetrics,
                                 accelerated: SystemMetrics,
                                 params: EnergyParams = EnergyParams(),
                                 voltage_exponent: float = 2.0) -> float:
    """Energy ratio when the speedup is traded for frequency instead.

    Section 5.3's closing argument: "assuming that the MIPS itself would
    be enough to handle real time constraints ..., one could reduce the
    system clock frequency to achieve exactly the same performance level
    — thus decreasing even more the power and energy consumptions."

    Scaling the accelerated system's clock down by the speedup ``s``
    allows a proportional supply-voltage reduction; with dynamic energy
    per operation proportional to ``V^2`` (``voltage_exponent``), every
    event in the accelerated run costs ``s^-voltage_exponent`` as much,
    so the iso-performance ratio is ``energy_ratio * s^exponent``.
    """
    if not accelerated.cycles:
        return 0.0
    speedup = baseline.cycles / accelerated.cycles
    scale = max(1.0, speedup) ** voltage_exponent
    return energy_ratio(baseline, accelerated, params) * scale
