"""Persistent, content-addressed artifact cache for sweep evaluations.

Three artifact kinds are stored, mirroring the three stages of a matrix
sweep (see :mod:`repro.system.sweep`):

- ``trace`` — the basic-block trace of one workload's functional run,
  stored in a compact columnar form (block table + event arrays);
- ``baseline`` — the standalone-MIPS :class:`SystemMetrics` of a trace
  under one timing model;
- ``metrics`` — the accelerated :class:`SystemMetrics` of one
  (trace, system configuration) cell.

Every key is a SHA-256 over (a) a format version constant, (b) a *code
fingerprint* — the hash of every Python source file under the installed
``repro`` package — and (c) the artifact's own identity: the workload
name and mini-C source text, the timing-model fields, and (for cells)
the full system-configuration fingerprint.  Hashing the package source
makes invalidation automatic: any change to the simulator, compiler,
translator or evaluator produces new keys, so stale results can never be
served after a code edit.  The version constant exists for forced
invalidation when the *storage format* changes without a code change.

Writes are atomic (temp file + ``os.replace``) so concurrent sweep
workers can share one cache directory; unreadable or truncated entries
are treated as misses and removed.  The default location is
``$REPRO_CACHE_DIR``, falling back to ``~/.cache/repro/artifacts``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from array import array
from pathlib import Path
from typing import Optional

from repro.sim.trace import BlockTable, Trace, TraceEvent

#: bump to orphan every existing entry (storage-format changes).
FORMAT_VERSION = 1

_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (computed once)."""
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro" / "artifacts"


def _encode_trace(trace: Trace) -> dict:
    """Columnar trace encoding: ~10x fewer pickled objects than events."""
    ids, taken = trace.event_arrays()
    return {"table": trace.table, "event_ids": ids, "event_taken": taken}


def _decode_trace(payload: dict) -> Trace:
    table: BlockTable = payload["table"]
    events = [TraceEvent(block_id, taken != 0)
              for block_id, taken in zip(payload["event_ids"],
                                         payload["event_taken"])]
    trace = Trace(table, events)
    trace.seed_event_arrays(payload["event_ids"], payload["event_taken"])
    return trace


class ArtifactCache:
    """Content-addressed pickle store with hit/miss accounting."""

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        # one cache object may be shared by threaded warm workers
        # (repro.serve); the lock keeps the counters exact under that.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Keys.
    # ------------------------------------------------------------------
    def key(self, kind: str, *parts: object) -> str:
        """Stable content hash for one artifact identity."""
        digest = hashlib.sha256()
        digest.update(f"v{FORMAT_VERSION}".encode())
        digest.update(code_fingerprint().encode())
        digest.update(kind.encode())
        for part in parts:
            digest.update(b"\0")
            digest.update(repr(part).encode())
        return digest.hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    # Generic object storage.
    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[object]:
        """The stored object, or None on a miss (miss is counted).

        Readers racing a concurrent :meth:`store` of the same key are
        safe: publication is a single atomic ``os.replace``, so a
        reader sees either a complete previous record or a complete
        new one — never a torn entry (``tests/test_artifacts.py``
        hammers this from many threads).
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                record = pickle.load(handle)
            if record.get("key") == key:
                with self._lock:
                    self.hits += 1
                return record["payload"]
        except FileNotFoundError:
            pass
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, KeyError, ValueError):
            # damaged or foreign entry: drop it so it cannot recur
            try:
                path.unlink()
            except OSError:
                pass
        with self._lock:
            self.misses += 1
        return None

    def store(self, key: str, payload: object) -> None:
        """Atomically publish one artifact (safe under concurrency).

        The record is fully written to a uniquely-named temp file in
        the destination directory, then published with ``os.replace``
        — the only point at which any reader can observe the key.  The
        temp file is removed on *every* failure (not just ``OSError``:
        an unpicklable payload must not leak ``.tmp-*`` litter either),
        so concurrent writers of one key simply race to publish
        equivalent records and the last replace wins.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {"key": key, "payload": payload}
        fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                        prefix=".tmp-", suffix=".pkl")
        published = False
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(record, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
            published = True
        finally:
            if not published:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
        with self._lock:
            self.stores += 1

    # ------------------------------------------------------------------
    # Trace-specific wrappers (columnar encoding).
    # ------------------------------------------------------------------
    def load_trace(self, key: str) -> Optional[Trace]:
        payload = self.load(key)
        if payload is None:
            return None
        return _decode_trace(payload)

    def store_trace(self, key: str, trace: Trace) -> None:
        self.store(key, _encode_trace(trace))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
