"""Persistent, content-addressed artifact cache for sweep evaluations.

Three artifact kinds are stored, mirroring the three stages of a matrix
sweep (see :mod:`repro.system.sweep`):

- ``trace`` — the basic-block trace of one workload's functional run,
  stored in a compact columnar form (block table + event arrays);
- ``baseline`` — the standalone-MIPS :class:`SystemMetrics` of a trace
  under one timing model;
- ``metrics`` — the accelerated :class:`SystemMetrics` of one
  (trace, system configuration) cell.

Every key is a SHA-256 over (a) a format version constant, (b) a *code
fingerprint* — the hash of every Python source file under the installed
``repro`` package — and (c) the artifact's own identity: the workload
name and mini-C source text, the timing-model fields, and (for cells)
the full system-configuration fingerprint.  Hashing the package source
makes invalidation automatic: any change to the simulator, compiler,
translator or evaluator produces new keys, so stale results can never be
served after a code edit.  The version constant exists for forced
invalidation when the *storage format* changes without a code change.

Writes are atomic (temp file + ``os.replace``) so concurrent sweep
workers can share one cache directory; unreadable or truncated entries
are treated as misses and removed.  The default location is
``$REPRO_CACHE_DIR``, falling back to ``~/.cache/repro/artifacts``.

Two multi-process amenities sit on top of the plain store:

- **Scopes** — a cache opened with ``scope="<fingerprint>"`` places its
  entries under ``<root>/<scope>/`` instead of directly under the root.
  Keys are unchanged (they are content hashes either way); only the
  directory layout moves.  The evaluation fleet (:mod:`repro.fleet`)
  opens one scope per workload fingerprint so concurrent worker shards
  populating one ``REPRO_CACHE_DIR`` never contend on the same
  directories.
- **A size cap** — ``REPRO_CACHE_MAX_BYTES`` (or the ``max_bytes``
  argument) bounds the whole tree.  :meth:`ArtifactCache.prune` evicts
  least-recently-*read* entries first (``load`` refreshes an entry's
  atime explicitly, so LRU works even on ``noatime`` mounts), never
  touches entries pinned by an active reader, and leaves entries
  younger than a grace window alone so a reader in another process that
  just opened a file cannot have it deleted mid-read.  ``store`` checks
  the cap periodically, and ``repro cache {stats,prune}`` exposes both
  operations for ops use.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import tempfile
import threading
import time
from array import array
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.sim.trace import BlockTable, Trace, TraceEvent

#: bump to orphan every existing entry (storage-format changes).
FORMAT_VERSION = 1

_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (computed once)."""
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro" / "artifacts"


def _encode_trace(trace: Trace) -> dict:
    """Columnar trace encoding: ~10x fewer pickled objects than events."""
    ids, taken = trace.event_arrays()
    return {"table": trace.table, "event_ids": ids, "event_taken": taken}


def _decode_trace(payload: dict) -> Trace:
    table: BlockTable = payload["table"]
    events = [TraceEvent(block_id, taken != 0)
              for block_id, taken in zip(payload["event_ids"],
                                         payload["event_taken"])]
    trace = Trace(table, events)
    trace.seed_event_arrays(payload["event_ids"], payload["event_taken"])
    return trace


#: how many stores between automatic size-cap checks.
_PRUNE_EVERY = 32

#: entries younger than this many seconds are never auto-evicted, so a
#: reader in another process that just opened a file keeps it.
_PRUNE_GRACE_SECONDS = 60.0


def _env_max_bytes() -> Optional[int]:
    raw = os.environ.get("REPRO_CACHE_MAX_BYTES")
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


class ArtifactCache:
    """Content-addressed pickle store with hit/miss accounting."""

    def __init__(self, root: Optional[Path] = None,
                 scope: Optional[str] = None,
                 max_bytes: Optional[int] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.scope = scope
        self.max_bytes = (max_bytes if max_bytes is not None
                          else _env_max_bytes())
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        # one cache object may be shared by threaded warm workers
        # (repro.serve); the lock keeps the counters exact under that.
        self._lock = threading.Lock()
        #: keys currently held open by a reader; prune never evicts them.
        self._pinned: Dict[str, int] = {}
        self._stores_since_prune = 0

    # ------------------------------------------------------------------
    # Keys.
    # ------------------------------------------------------------------
    def key(self, kind: str, *parts: object) -> str:
        """Stable content hash for one artifact identity."""
        digest = hashlib.sha256()
        digest.update(f"v{FORMAT_VERSION}".encode())
        digest.update(code_fingerprint().encode())
        digest.update(kind.encode())
        for part in parts:
            digest.update(b"\0")
            digest.update(repr(part).encode())
        return digest.hexdigest()

    def _path(self, key: str) -> Path:
        base = self.root / self.scope if self.scope else self.root
        return base / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    # Reader pinning.
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def pin(self, key: str):
        """Hold ``key`` safe from :meth:`prune` while the block runs."""
        with self._lock:
            self._pinned[key] = self._pinned.get(key, 0) + 1
        try:
            yield
        finally:
            with self._lock:
                remaining = self._pinned.get(key, 1) - 1
                if remaining <= 0:
                    self._pinned.pop(key, None)
                else:
                    self._pinned[key] = remaining

    # ------------------------------------------------------------------
    # Generic object storage.
    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[object]:
        """The stored object, or None on a miss (miss is counted).

        Readers racing a concurrent :meth:`store` of the same key are
        safe: publication is a single atomic ``os.replace``, so a
        reader sees either a complete previous record or a complete
        new one — never a torn entry (``tests/test_artifacts.py``
        hammers this from many threads).
        """
        path = self._path(key)
        try:
            with self.pin(key), open(path, "rb") as handle:
                record = pickle.load(handle)
            if record.get("key") == key:
                # refresh the access time explicitly: LRU pruning
                # must work even on noatime/relatime mounts.
                try:
                    os.utime(path)
                except OSError:
                    pass
                with self._lock:
                    self.hits += 1
                return record["payload"]
        except FileNotFoundError:
            pass
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, KeyError, ValueError):
            # damaged or foreign entry: drop it so it cannot recur
            try:
                path.unlink()
            except OSError:
                pass
        with self._lock:
            self.misses += 1
        return None

    def store(self, key: str, payload: object) -> None:
        """Atomically publish one artifact (safe under concurrency).

        The record is fully written to a uniquely-named temp file in
        the destination directory, then published with ``os.replace``
        — the only point at which any reader can observe the key.  The
        temp file is removed on *every* failure (not just ``OSError``:
        an unpicklable payload must not leak ``.tmp-*`` litter either),
        so concurrent writers of one key simply race to publish
        equivalent records and the last replace wins.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {"key": key, "payload": payload}
        fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                        prefix=".tmp-", suffix=".pkl")
        published = False
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(record, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
            published = True
        finally:
            if not published:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
        with self._lock:
            self.stores += 1
            self._stores_since_prune += 1
            due = (self.max_bytes is not None
                   and self._stores_since_prune >= _PRUNE_EVERY)
            if due:
                self._stores_since_prune = 0
        if due:
            self.prune()

    # ------------------------------------------------------------------
    # Size accounting and LRU pruning.
    # ------------------------------------------------------------------
    def _entries(self) -> List[Tuple[float, int, Path]]:
        """Every published entry as ``(atime, size, path)``; scans the
        whole root so scoped caches account the shared tree."""
        entries: List[Tuple[float, int, Path]] = []
        for path in self.root.rglob("*.pkl"):
            if path.name.startswith(".tmp-"):
                continue
            try:
                info = path.stat()
            except OSError:
                continue
            entries.append((max(info.st_atime, info.st_mtime),
                            info.st_size, path))
        return entries

    def stats(self) -> Dict[str, object]:
        """Size and age summary of the whole cache tree (ops view)."""
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        now = time.time()
        ages = [now - atime for atime, _, _ in entries]
        scopes = sorted({path.parent.parent.name
                         for _, _, path in entries
                         if path.parent.parent != self.root})
        return {
            "root": str(self.root),
            "entries": len(entries),
            "total_bytes": total,
            "max_bytes": self.max_bytes,
            "scopes": scopes,
            "oldest_age_seconds": max(ages) if ages else 0.0,
            "newest_age_seconds": min(ages) if ages else 0.0,
        }

    def prune(self, max_bytes: Optional[int] = None,
              grace_seconds: float = _PRUNE_GRACE_SECONDS
              ) -> Dict[str, int]:
        """Evict least-recently-read entries until the tree fits.

        Never evicts a key pinned by an active reader of *this*
        process, and never evicts entries accessed within
        ``grace_seconds`` — a reader in another process refreshes the
        atime the moment it opens an entry, so recently-opened files
        survive.  Returns an eviction report.
        """
        cap = max_bytes if max_bytes is not None else self.max_bytes
        if cap is None:
            raise ValueError("no size cap: pass max_bytes or set "
                             "REPRO_CACHE_MAX_BYTES")
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        evicted = evicted_bytes = 0
        if total > cap:
            with self._lock:
                pinned = set(self._pinned)
            cutoff = time.time() - grace_seconds
            for atime, size, path in sorted(entries):
                if total <= cap:
                    break
                if path.stem in pinned or atime > cutoff:
                    continue
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                evicted += 1
                evicted_bytes += size
        with self._lock:
            self.evictions += evicted
        return {"evicted": evicted, "evicted_bytes": evicted_bytes,
                "remaining_bytes": total}

    # ------------------------------------------------------------------
    # Trace-specific wrappers (columnar encoding).
    # ------------------------------------------------------------------
    def load_trace(self, key: str) -> Optional[Trace]:
        payload = self.load(key)
        if payload is None:
            return None
        return _decode_trace(payload)

    def store_trace(self, key: str, trace: Trace) -> None:
        self.store(key, _encode_trace(trace))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
