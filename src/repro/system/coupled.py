"""Bit-exact co-simulation of the MIPS core with DIM and the array.

The coupled simulator interleaves normal pipeline execution with array
execution.  Array-covered instructions run through the very same
:mod:`repro.isa.semantics` functions the core uses, with speculative
blocks committed only when their guarding branch resolves in the
predicted direction — so architectural state (registers, memory, program
output) is provably identical to a plain run, which the test suite
asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.asm.program import Program
from repro.cgra.configuration import Configuration
from repro.dim.engine import DimEngine, DimStats
from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstrClass
from repro.isa.semantics import alu_result, branch_taken, mult_result
from repro.obs.schema import engine_counters
from repro.sim.cpu import Simulator, _load, _store
from repro.sim.stats import RunStats
from repro.sim.trace import BasicBlock
from repro.system.config import SystemConfig


@dataclass
class CoupledRunResult:
    """Outcome of one coupled simulation."""

    exit_code: int
    output: str
    stats: RunStats
    dim_stats: DimStats
    registers: List[int]
    memory: object
    cache_lookups: int
    cache_hits: int
    predictor_accuracy: float

    @property
    def cycles(self) -> int:
        return self.stats.cycles


class CoupledSimulator:
    """MIPS core + DIM engine + reconfigurable array."""

    def __init__(self, program: Program, config: SystemConfig,
                 max_instructions: int = 200_000_000,
                 caches=None, fast: bool = False, telemetry=None):
        self.config = config
        self.sim = Simulator(program, timing=config.timing,
                             collect_trace=False,
                             max_instructions=max_instructions,
                             caches=caches, fast=fast,
                             telemetry=telemetry)
        self._seen: Set[int] = set()
        self.engine = DimEngine(config.shape, config.dim,
                                self._block_provider,
                                telemetry=telemetry)

    def _block_provider(self, pc: int) -> Optional[BasicBlock]:
        """Successor lookup for the translator.

        Only blocks that have actually executed from their start are
        visible — the DIM hardware discovers code by watching the retired
        stream, never by probing instruction memory.
        """
        if pc not in self._seen:
            return None
        return self.sim.block_at(pc)

    # ------------------------------------------------------------------
    def run(self) -> CoupledRunResult:
        sim = self.sim
        engine = self.engine
        at_start = True
        entered_at_start = True
        block_start = sim.pc
        while sim.exit_code is None:
            if at_start:
                self._seen.add(sim.pc)
                config = engine.lookup(sim.pc)
                if config is not None:
                    config = engine.maybe_extend(config)
                    at_start, block_start = self._execute_array(config)
                    entered_at_start = at_start
                    continue
            # Execute to the end of the (possibly partially resumed)
            # block in one call — block-compiled when fast is enabled.
            outcome = sim.step_block()
            block = sim.block_at(block_start)
            if block.is_conditional:
                engine.observe_branch(block.branch_pc, outcome.taken)
            if entered_at_start and sim.exit_code is None:
                engine.consider_translation(block)
            at_start = True
            entered_at_start = True
            block_start = outcome.next_pc
        cache = engine.cache
        if engine.telemetry.enabled:
            engine.telemetry.count_many(engine_counters(engine))
        return CoupledRunResult(
            exit_code=sim.exit_code,
            output="".join(sim.output_parts),
            stats=sim.stats,
            dim_stats=engine.stats,
            registers=sim.regs,
            memory=sim.memory,
            cache_lookups=cache.lookups,
            cache_hits=cache.hits,
            predictor_accuracy=engine.predictor.accuracy,
        )

    # ------------------------------------------------------------------
    def _execute_array(self, config: Configuration) -> Tuple[bool, int]:
        """Run one configuration; returns (resumed_at_block_start, pc).

        When the array covers only a prefix of the final block, the core
        resumes mid-block and the returned flag is False (no cache lookup
        happens mid-block).
        """
        sim = self.sim
        engine = self.engine
        stats = sim.stats
        params = self.config.dim
        stall = engine.begin_execution(config)
        stats.cycles += stall + config.exec_cycles
        if config.kind == "loop":
            return self._execute_loop(config)
        if config.kind == "dual":
            return self._execute_dual(config)
        committed = 0
        resume_at_start = True
        resume_pc = config.start_pc
        for cfg_block in config.blocks:
            block = cfg_block.block
            self._seen.add(block.start_pc)
            pc = block.start_pc
            for i in range(cfg_block.covered):
                self._exec_functional(block.instructions[i], pc)
                pc += 4
            committed += cfg_block.covered
            if not cfg_block.includes_terminator:
                # final block: the core resumes after the covered prefix
                resume_pc = block.start_pc + 4 * cfg_block.covered
                resume_at_start = cfg_block.covered == 0
                break
            term = block.terminator
            committed += 1
            stats.branches += 1
            if term.klass is InstrClass.BRANCH:
                actual = branch_taken(term.mnemonic, sim.regs[term.rs],
                                      sim.regs[term.rt])
                if actual:
                    stats.taken_transfers += 1
                if not engine.speculation_outcome(config, cfg_block,
                                                  actual):
                    stats.cycles += params.misspec_penalty
                    resume_pc = term.branch_target(block.branch_pc) \
                        if actual else block.fallthrough_pc
                    resume_at_start = True
                    break
            else:  # unconditional j — always correct
                stats.taken_transfers += 1
        else:  # pragma: no cover - blocks always end with a non-terminator
            pass
        stats.instructions += committed
        engine.stats.array_instructions += committed
        if stats.instructions > sim.max_instructions:
            raise RuntimeError("instruction budget exceeded in array")
        sim.pc = resume_pc
        sim.reset_block_start(resume_pc if resume_at_start
                              else config.blocks[-1].block.start_pc)
        if resume_at_start:
            return True, resume_pc
        return False, config.blocks[-1].block.start_pc

    def _execute_loop(self, config: Configuration) -> Tuple[bool, int]:
        """Iterate a loop-kind configuration functionally.

        Mirrors ``traceeval._run_loop`` cycle for cycle: each trip
        re-executes the whole chain, pays the back-edge exit check, and
        only a continuing back-edge pays the marginal trip cycles.
        """
        sim = self.sim
        engine = self.engine
        stats = sim.stats
        params = self.config.dim
        blocks = config.blocks
        back = len(blocks) - 1
        chk = config.loop_check_cycles
        committed = 0
        resume_pc = config.start_pc
        looping = True
        while looping:
            for q, cfg_block in enumerate(blocks):
                block = cfg_block.block
                self._seen.add(block.start_pc)
                pc = block.start_pc
                for idx in range(cfg_block.covered):
                    self._exec_functional(block.instructions[idx], pc)
                    pc += 4
                committed += cfg_block.covered
                term = block.terminator
                committed += 1
                stats.branches += 1
                if term.klass is InstrClass.BRANCH:
                    actual = branch_taken(term.mnemonic,
                                          sim.regs[term.rs],
                                          sim.regs[term.rt])
                    if actual:
                        stats.taken_transfers += 1
                    target = term.branch_target(block.branch_pc) \
                        if actual else block.fallthrough_pc
                    if q == back:
                        stats.cycles += chk
                        if engine.loop_backedge(config, cfg_block,
                                                actual):
                            stats.cycles += engine.loop_iteration(config)
                        else:
                            resume_pc = target
                            looping = False
                    elif not engine.speculation_outcome(config, cfg_block,
                                                        actual):
                        stats.cycles += params.misspec_penalty
                        resume_pc = target
                        looping = False
                        break
                else:  # unconditional j interior
                    stats.taken_transfers += 1
            if stats.instructions + committed > sim.max_instructions:
                raise RuntimeError("instruction budget exceeded in array")
        stats.instructions += committed
        engine.stats.array_instructions += committed
        sim.pc = resume_pc
        sim.reset_block_start(resume_pc)
        return True, resume_pc

    def _execute_dual(self, config: Configuration) -> Tuple[bool, int]:
        """Execute a dual-kind configuration functionally.

        Only the winning path's instructions touch architectural state
        (the loser's write-backs are gated off in hardware); the core
        resumes mid-block after the winner's covered prefix, exactly as
        ``traceeval._run_dual`` accounts it.
        """
        sim = self.sim
        engine = self.engine
        stats = sim.stats
        params = self.config.dim
        blocks = config.blocks
        last = len(blocks) - 1
        committed = 0
        resume_pc = config.start_pc
        winner_block = None
        for q, cfg_block in enumerate(blocks):
            block = cfg_block.block
            self._seen.add(block.start_pc)
            pc = block.start_pc
            for idx in range(cfg_block.covered):
                self._exec_functional(block.instructions[idx], pc)
                pc += 4
            committed += cfg_block.covered
            term = block.terminator
            committed += 1
            stats.branches += 1
            if q == last:
                actual = branch_taken(term.mnemonic, sim.regs[term.rs],
                                      sim.regs[term.rt])
                if actual:
                    stats.taken_transfers += 1
                winner = engine.dual_resolution(config, cfg_block, actual)
                wblk = winner.block
                self._seen.add(wblk.start_pc)
                pc = wblk.start_pc
                for idx in range(winner.covered):
                    self._exec_functional(wblk.instructions[idx], pc)
                    pc += 4
                committed += winner.covered
                resume_pc = wblk.start_pc + 4 * winner.covered
                winner_block = wblk
            elif term.klass is InstrClass.BRANCH:
                actual = branch_taken(term.mnemonic, sim.regs[term.rs],
                                      sim.regs[term.rt])
                if actual:
                    stats.taken_transfers += 1
                if not engine.speculation_outcome(config, cfg_block,
                                                  actual):
                    stats.cycles += params.misspec_penalty
                    resume_pc = term.branch_target(block.branch_pc) \
                        if actual else block.fallthrough_pc
                    break
            else:  # unconditional j interior
                stats.taken_transfers += 1
        stats.instructions += committed
        engine.stats.array_instructions += committed
        if stats.instructions > sim.max_instructions:
            raise RuntimeError("instruction budget exceeded in array")
        sim.pc = resume_pc
        if winner_block is None:
            # interior mis-speculation: resume at a block start
            sim.reset_block_start(resume_pc)
            return True, resume_pc
        # mid-block resume after the winning path's covered prefix
        sim.reset_block_start(winner_block.start_pc)
        return False, winner_block.start_pc

    def _array_memory_access(self, address: int) -> None:
        """Charge a data-cache access made by an array LD/ST unit.

        Section 4.3: array operations are scheduled assuming cache hits;
        "if a miss occurs, the whole array operation stops until the miss
        is resolved" — so a miss simply adds its penalty to the run.
        """
        dcache = self.sim.caches.dcache
        if dcache is not None and not dcache.access(address):
            self.sim.stats.dcache_misses += 1
            self.sim.stats.cycles += dcache.config.miss_penalty

    def _exec_functional(self, instr: Instruction, pc: int) -> None:
        """Functionally execute one array-covered instruction."""
        sim = self.sim
        regs = sim.regs
        klass = instr.klass
        if klass is InstrClass.ALU or klass is InstrClass.SHIFT:
            dest = instr.destination()
            if dest is not None:
                b = instr.imm if instr.info.fmt.value == "I" \
                    else regs[instr.rt]
                regs[dest] = alu_result(instr, regs[instr.rs], b)
        elif klass is InstrClass.LOAD:
            sim.stats.loads += 1
            address = (regs[instr.rs] + instr.imm) & 0xFFFFFFFF
            self._array_memory_access(address)
            value = _load(sim.memory, instr.mnemonic, address)
            dest = instr.destination()
            if dest is not None:
                regs[dest] = value
        elif klass is InstrClass.STORE:
            sim.stats.stores += 1
            address = (regs[instr.rs] + instr.imm) & 0xFFFFFFFF
            self._array_memory_access(address)
            _store(sim.memory, instr.mnemonic, address, regs[instr.rt])
        elif klass is InstrClass.MULT:
            sim.hi, sim.lo = mult_result(instr.mnemonic, regs[instr.rs],
                                         regs[instr.rt])
        elif klass is InstrClass.HILO:
            mnemonic = instr.mnemonic
            if mnemonic == "mfhi":
                dest = instr.destination()
                if dest is not None:
                    regs[dest] = sim.hi
            elif mnemonic == "mflo":
                dest = instr.destination()
                if dest is not None:
                    regs[dest] = sim.lo
            elif mnemonic == "mthi":
                sim.hi = regs[instr.rs]
            else:
                sim.lo = regs[instr.rs]
        elif klass is InstrClass.NOP:
            pass
        else:  # pragma: no cover - translator never places these
            raise RuntimeError(f"unsupported array instruction {instr}")


def run_coupled(program: Program, config: SystemConfig,
                max_instructions: int = 200_000_000,
                caches=None, fast: bool = False,
                telemetry=None) -> CoupledRunResult:
    """One-shot convenience wrapper."""
    return CoupledSimulator(program, config, max_instructions,
                            caches=caches, fast=fast,
                            telemetry=telemetry).run()
