"""Fast trace-driven evaluation of a DIM system.

Replays a basic-block trace (from one plain functional run) through the
same :class:`~repro.dim.engine.DimEngine` the coupled simulator uses.
Because block costs are static (see :mod:`repro.system.costmodel`) and
DIM's state machine depends only on block identities and branch
outcomes, the replay is cycle-exact with respect to the coupled
simulator — the test suite asserts this — while being orders of
magnitude faster, which is what makes the paper's 18-workload x
18-configuration sweep tractable in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Set, Tuple

from repro.dim.engine import DimEngine, DimStats
from repro.dim.memo import TranslationMemo
from repro.isa.opcodes import InstrClass
from repro.obs.schema import engine_counters
from repro.sim.stats import TimingModel
from repro.sim.trace import BasicBlock, Trace
from repro.system.config import SystemConfig
from repro.system.costmodel import BlockCostModel, shared_cost_model


@dataclass
class SystemMetrics:
    """Cycle and event totals for one (workload, system) evaluation."""

    name: str = ""
    cycles: int = 0
    instructions: int = 0
    fetches: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    taken_transfers: int = 0
    load_use_stalls: int = 0
    hilo_stalls: int = 0
    syscalls: int = 0
    dim: Optional[DimStats] = None
    cache_lookups: int = 0
    cache_hits: int = 0
    cache_insertions: int = 0
    cache_evictions: int = 0
    cache_invalidations: int = 0
    predictor_accuracy: float = 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


def baseline_metrics(trace: Trace,
                     timing: Optional[TimingModel] = None) -> SystemMetrics:
    """Cycles and events of the standalone MIPS core over a trace.

    Agrees exactly with :class:`repro.sim.cpu.Simulator` on the same
    program (asserted by the test suite).
    """
    timing = timing or TimingModel()
    model = shared_cost_model(timing)
    metrics = SystemMetrics(name="mips")
    table = trace.table
    for event in trace.events:
        block = table.get(event.block_id)
        _account_normal(metrics, model, block, 0, event.taken)
    return metrics


def _account_normal(metrics: SystemMetrics, model: BlockCostModel,
                    block: BasicBlock, start_idx: int, taken: bool) -> None:
    """Accumulate the cost of normally executing block[start_idx:]."""
    cost = model.cost(block, start_idx)
    metrics.cycles += cost.cycles(taken)
    metrics.instructions += cost.instructions
    metrics.fetches += cost.fetches
    metrics.loads += cost.loads
    metrics.stores += cost.stores
    metrics.branches += cost.branches
    metrics.load_use_stalls += cost.load_use_stalls
    metrics.hilo_stalls += cost.hilo_stalls
    metrics.syscalls += cost.syscalls
    terminator = block.terminator
    if terminator is not None:
        if terminator.klass is InstrClass.JUMP or taken:
            metrics.taken_transfers += 1


#: memoized (loads, stores) of covered block prefixes, shared across the
#: whole sweep: replaying one block table under all 18 paper systems hits
#: this cache 17 times out of 18.  Keyed by block *identity* (blocks use
#: identity hashing), so entries from different workloads never collide.
#: LRU-bounded so a long-lived sweep process does not pin every block of
#: every workload it ever replayed (the full 18-workload suite uses a few
#: thousand entries, well inside the bound).
@lru_cache(maxsize=65536)
def _prefix_mem_ops(block: BasicBlock, covered: int) -> Tuple[int, int]:
    loads = stores = 0
    for instr in block.instructions[:covered]:
        if instr.klass is InstrClass.LOAD:
            loads += 1
        elif instr.klass is InstrClass.STORE:
            stores += 1
    return (loads, stores)


def _run_loop(engine: DimEngine, metrics: SystemMetrics, cfg,
              events, i: int, seen: Set[int],
              misspec_penalty: int) -> int:
    """Execute one loop-kind configuration; returns the next event index.

    The array iterates the whole block chain: every trip pays the
    dataflow depth plus the back-edge exit check, and only the first
    trip pays reconfiguration and the write-back drain (charged by the
    caller).  A back-edge resolving off the loop is a clean exit; an
    interior merged branch mismatching is an ordinary mis-speculation.
    Mirrored cycle-for-cycle by ``CoupledSimulator._execute_array`` and
    by the columnar loop template.
    """
    committed = 0
    j = i
    blocks = cfg.blocks
    back = len(blocks) - 1
    chk = cfg.loop_check_cycles
    looping = True
    while looping:
        for q, cfg_block in enumerate(blocks):
            cfg_blk = cfg_block.block
            seen.add(cfg_blk.start_pc)
            ev = events[j]
            if ev.block_id != cfg_blk.block_id:  # pragma: no cover
                raise RuntimeError(
                    "trace/configuration divergence at event "
                    f"{j}: expected block {cfg_blk.block_id}, "
                    f"got {ev.block_id}")
            committed += cfg_block.covered
            loads, stores = _prefix_mem_ops(cfg_blk, cfg_block.covered)
            metrics.loads += loads
            metrics.stores += stores
            term = cfg_blk.terminator
            committed += 1
            metrics.branches += 1
            j += 1
            if term.klass is InstrClass.BRANCH:
                actual = ev.taken
                if actual:
                    metrics.taken_transfers += 1
                if q == back:
                    metrics.cycles += chk
                    if engine.loop_backedge(cfg, cfg_block, actual):
                        metrics.cycles += engine.loop_iteration(cfg)
                    else:
                        looping = False
                elif not engine.speculation_outcome(cfg, cfg_block,
                                                    actual):
                    metrics.cycles += misspec_penalty
                    looping = False
                    break
            else:  # unconditional j interior
                metrics.taken_transfers += 1
    metrics.instructions += committed
    engine.stats.array_instructions += committed
    return j


def _run_dual(engine: DimEngine, metrics: SystemMetrics, model,
              cfg, events, i: int, seen: Set[int],
              misspec_penalty: int) -> int:
    """Execute one dual-kind configuration; returns the next event index.

    The chain walks exactly like a linear configuration until the final
    (predicated) branch: its resolution squashes the losing path's
    gated write-backs at no penalty, commits the winning path's covered
    prefix from the array, and the winner's tail executes normally on
    the core (mid-block resume — no cache lookup, matching the coupled
    simulator).
    """
    committed = 0
    j = i
    blocks = cfg.blocks
    last = len(blocks) - 1
    for q, cfg_block in enumerate(blocks):
        cfg_blk = cfg_block.block
        seen.add(cfg_blk.start_pc)
        ev = events[j]
        if ev.block_id != cfg_blk.block_id:  # pragma: no cover
            raise RuntimeError(
                "trace/configuration divergence at event "
                f"{j}: expected block {cfg_blk.block_id}, "
                f"got {ev.block_id}")
        committed += cfg_block.covered
        loads, stores = _prefix_mem_ops(cfg_blk, cfg_block.covered)
        metrics.loads += loads
        metrics.stores += stores
        term = cfg_blk.terminator
        committed += 1
        metrics.branches += 1
        if q == last:
            actual = ev.taken
            if actual:
                metrics.taken_transfers += 1
            j += 1
            winner = engine.dual_resolution(cfg, cfg_block, actual)
            wblk = winner.block
            seen.add(wblk.start_pc)
            succ_ev = events[j]
            if succ_ev.block_id != wblk.block_id:  # pragma: no cover
                raise RuntimeError(
                    "trace/configuration divergence at event "
                    f"{j}: expected block {wblk.block_id}, "
                    f"got {succ_ev.block_id}")
            committed += winner.covered
            loads, stores = _prefix_mem_ops(wblk, winner.covered)
            metrics.loads += loads
            metrics.stores += stores
            _account_normal(metrics, model, wblk, winner.covered,
                            succ_ev.taken)
            if wblk.is_conditional:
                engine.observe_branch(wblk.branch_pc, succ_ev.taken)
            j += 1
        elif term.klass is InstrClass.BRANCH:
            actual = ev.taken
            if actual:
                metrics.taken_transfers += 1
            j += 1
            if not engine.speculation_outcome(cfg, cfg_block, actual):
                metrics.cycles += misspec_penalty
                break
        else:  # unconditional j interior
            metrics.taken_transfers += 1
            j += 1
    metrics.instructions += committed
    engine.stats.array_instructions += committed
    return j


def evaluate_trace(trace: Trace, config: SystemConfig,
                   name: str = "",
                   memo: Optional["TranslationMemo"] = None,
                   telemetry=None) -> SystemMetrics:
    """Replay a trace through a DIM system; returns its metrics.

    The replay mirrors :class:`repro.system.coupled.CoupledSimulator`
    decision for decision: same lookup points, same translation and
    extension triggers, same speculation resolution and flush policy.
    ``memo`` optionally shares translation work with other evaluations
    of the same trace (see :mod:`repro.dim.memo`); it never changes the
    returned metrics.  ``telemetry`` optionally injects a
    :class:`repro.obs.Telemetry` sink; telemetry is purely
    observational, so metrics are identical with or without it.
    """
    model = shared_cost_model(config.timing)
    table = trace.table
    seen: Set[int] = set()

    def provider(pc: int) -> Optional[BasicBlock]:
        if pc not in seen:
            return None
        return table.get_by_pc(pc)

    engine = DimEngine(config.shape, config.dim, provider,
                       translation_memo=memo, telemetry=telemetry)
    metrics = SystemMetrics(name=name or config.name)
    events = trace.events
    n = len(events)
    i = 0
    while i < n:
        event = events[i]
        block = table.get(event.block_id)
        seen.add(block.start_pc)
        cfg = engine.lookup(block.start_pc)
        if cfg is None:
            _account_normal(metrics, model, block, 0, event.taken)
            if block.is_conditional:
                engine.observe_branch(block.branch_pc, event.taken)
            if i < n - 1:
                engine.consider_translation(block)
            i += 1
            continue

        # ---- array execution --------------------------------------------
        cfg = engine.maybe_extend(cfg)
        stall = engine.begin_execution(cfg)
        metrics.cycles += stall + cfg.exec_cycles
        if cfg.kind == "loop":
            i = _run_loop(engine, metrics, cfg, events, i, seen,
                          config.dim.misspec_penalty)
            continue
        if cfg.kind == "dual":
            i = _run_dual(engine, metrics, model, cfg, events, i, seen,
                          config.dim.misspec_penalty)
            continue
        committed = 0
        j = i
        for cfg_block in cfg.blocks:
            cfg_blk = cfg_block.block
            seen.add(cfg_blk.start_pc)
            ev = events[j]
            if ev.block_id != cfg_blk.block_id:  # pragma: no cover
                raise RuntimeError(
                    "trace/configuration divergence at event "
                    f"{j}: expected block {cfg_blk.block_id}, "
                    f"got {ev.block_id}")
            committed += cfg_block.covered
            loads, stores = _prefix_mem_ops(cfg_blk, cfg_block.covered)
            metrics.loads += loads
            metrics.stores += stores
            if not cfg_block.includes_terminator:
                if cfg_block.covered == 0:
                    # nothing of this block ran on the array: reprocess
                    # the event with a fresh lookup (matches the coupled
                    # simulator resuming at a block start).
                    break
                _account_normal(metrics, model, cfg_blk,
                                cfg_block.covered, ev.taken)
                if cfg_blk.is_conditional:
                    engine.observe_branch(cfg_blk.branch_pc, ev.taken)
                j += 1
                break
            term = cfg_blk.terminator
            committed += 1
            metrics.branches += 1
            if term.klass is InstrClass.BRANCH:
                actual = ev.taken
                if actual:
                    metrics.taken_transfers += 1
                j += 1
                if not engine.speculation_outcome(cfg, cfg_block, actual):
                    metrics.cycles += config.dim.misspec_penalty
                    break
            else:  # unconditional j
                metrics.taken_transfers += 1
                j += 1
        metrics.instructions += committed
        engine.stats.array_instructions += committed
        i = j

    cache = engine.cache
    metrics.dim = engine.stats
    metrics.cache_lookups = cache.lookups
    metrics.cache_hits = cache.hits
    metrics.cache_insertions = cache.insertions
    metrics.cache_evictions = cache.evictions
    metrics.cache_invalidations = cache.invalidations
    metrics.predictor_accuracy = engine.predictor.accuracy
    if telemetry is not None and telemetry.enabled:
        telemetry.count_many(engine_counters(engine))
    return metrics


def speedup(trace: Trace, config: SystemConfig) -> float:
    """Baseline cycles divided by accelerated cycles for one trace."""
    base = baseline_metrics(trace, config.timing)
    accel = evaluate_trace(trace, config)
    return base.cycles / accel.cycles if accel.cycles else 0.0
