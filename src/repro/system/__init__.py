"""The coupled MIPS + DIM + array system and its evaluation harnesses.

Two execution paths produce identical cycle counts:

- :class:`repro.system.coupled.CoupledSimulator` runs the program
  functionally with the array in the loop — bit-exact architectural
  state, used to *validate* the mechanism.
- :func:`repro.system.traceeval.evaluate_trace` replays a basic-block
  trace through the same :class:`repro.dim.engine.DimEngine`, without
  re-executing instructions — used by the benchmark harnesses to sweep
  the paper's 18 workloads x 18+2 system configurations quickly.

:mod:`repro.system.config` holds Table 1's array shapes,
:mod:`repro.system.energy` the event-based power/energy model
(Figures 5/6), and :mod:`repro.system.area` the gate-count and
configuration-bit model (Table 3).
"""

from repro.system.config import (
    PAPER_CACHE_SLOTS,
    PAPER_SHAPES,
    SystemConfig,
    paper_system,
)
from repro.system.costmodel import BlockCost, BlockCostModel
from repro.system.coupled import (
    CoupledSimulator,
    CoupledRunResult,
    run_coupled,
)
from repro.system.traceeval import (
    SystemMetrics,
    baseline_metrics,
    evaluate_trace,
    speedup,
)
from repro.system.energy import (
    EnergyParams,
    EnergyBreakdown,
    energy_of,
    energy_ratio,
)
from repro.system.area import (
    AreaParams,
    area_report,
    cache_bytes,
    config_bits_report,
)
from repro.system.artifacts import ArtifactCache
from repro.system.sweep import (
    MatrixResult,
    SweepInstrumentation,
    evaluate_matrix,
    paper_matrix,
    replay_matrix,
    replay_workload,
)

__all__ = [
    "PAPER_CACHE_SLOTS",
    "PAPER_SHAPES",
    "SystemConfig",
    "paper_system",
    "BlockCost",
    "BlockCostModel",
    "CoupledSimulator",
    "CoupledRunResult",
    "run_coupled",
    "SystemMetrics",
    "baseline_metrics",
    "evaluate_trace",
    "speedup",
    "EnergyParams",
    "EnergyBreakdown",
    "energy_of",
    "energy_ratio",
    "AreaParams",
    "area_report",
    "cache_bytes",
    "config_bits_report",
    "ArtifactCache",
    "MatrixResult",
    "SweepInstrumentation",
    "evaluate_matrix",
    "paper_matrix",
    "replay_matrix",
    "replay_workload",
]
