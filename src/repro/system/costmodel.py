"""Static per-block cycle costs.

Because the core resets its interlock trackers at every control transfer
(see :mod:`repro.sim.cpu`), the cost of executing instructions
``start_idx..end`` of a basic block is a static function of the block and
the terminator outcome.  This module computes and caches those costs; it
is what lets the trace-driven evaluator agree cycle-exactly with the
coupled simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.isa.opcodes import InstrClass
from repro.sim.stats import TimingModel
from repro.sim.trace import BasicBlock


@dataclass(frozen=True)
class BlockCost:
    """Cycle and event counts for one (block, start index) range."""

    cycles_not_taken: int
    cycles_taken: int
    instructions: int
    fetches: int
    loads: int
    stores: int
    branches: int
    load_use_stalls: int
    hilo_stalls: int
    syscalls: int

    def cycles(self, taken: bool) -> int:
        return self.cycles_taken if taken else self.cycles_not_taken


class BlockCostModel:
    """Computes (and memoizes) static block execution costs."""

    def __init__(self, timing: TimingModel):
        self.timing = timing
        self._cache: Dict[Tuple[BasicBlock, int], BlockCost] = {}

    def cost(self, block: BasicBlock, start_idx: int = 0) -> BlockCost:
        key = (block, start_idx)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._compute(block, start_idx)
            self._cache[key] = cached
        return cached

    def _compute(self, block: BasicBlock,
                 start_idx: int) -> BlockCost:  # noqa: C901 - mirrors step()
        timing = self.timing
        cycles = 0
        loads = stores = branches = syscalls = 0
        load_use = hilo_stalls = 0
        last_load_dest = None
        hilo_ready = -10**9
        taken_extra = 0
        instrs = block.instructions
        count = len(instrs) - start_idx
        for idx in range(start_idx, len(instrs)):
            instr = instrs[idx]
            klass = instr.klass
            step = 1
            if last_load_dest is not None \
                    and last_load_dest in instr.sources():
                step += timing.load_use_stall
                load_use += 1
            last_load_dest = None
            if klass is InstrClass.LOAD:
                loads += 1
                if instr.destination() is not None:
                    last_load_dest = instr.destination()
            elif klass is InstrClass.STORE:
                stores += 1
            elif klass is InstrClass.BRANCH:
                branches += 1
                taken_extra = timing.branch_penalty
            elif klass is InstrClass.JUMP:
                branches += 1
                step += timing.branch_penalty
            elif klass is InstrClass.MULT:
                hilo_ready = cycles + step + timing.mult_latency
            elif klass is InstrClass.DIV:
                hilo_ready = cycles + step + timing.div_latency
            elif klass is InstrClass.HILO:
                if instr.mnemonic in ("mfhi", "mflo"):
                    wait = hilo_ready - (cycles + step)
                    if wait > 0:
                        step += wait
                        hilo_stalls += wait
            elif klass is InstrClass.SYSCALL:
                syscalls += 1
                step += timing.syscall_cycles - 1
            cycles += step
        return BlockCost(
            cycles_not_taken=cycles,
            cycles_taken=cycles + taken_extra,
            instructions=count,
            fetches=count,
            loads=loads,
            stores=stores,
            branches=branches,
            load_use_stalls=load_use,
            hilo_stalls=hilo_stalls,
            syscalls=syscalls,
        )


#: process-wide cost models, one per timing configuration.  Sharing one
#: model across every trace evaluation and fast-path compilation means a
#: block's cost is computed exactly once per process, no matter how many
#: system configurations the sweep replays it under.  Costs are keyed by
#: block identity, so entries live as long as the block table that owns
#: them (bounded by the workload suite: a few thousand blocks).
_SHARED_MODELS: Dict[TimingModel, BlockCostModel] = {}


def shared_cost_model(timing: TimingModel) -> BlockCostModel:
    """The process-wide :class:`BlockCostModel` for ``timing``."""
    model = _SHARED_MODELS.get(timing)
    if model is None:
        model = BlockCostModel(timing)
        _SHARED_MODELS[timing] = model
    return model
