"""Comprehensive acceleration reports for one program.

Bundles everything a user asks about a binary into one artefact:
workload characterisation (Figure 3 style), the DIM outcome on a chosen
system (speedup, energy, engine statistics) and the hottest cached
configurations rendered line by line (Figure 2 style).  Exposed through
``repro report`` on the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.blocks import block_profile
from repro.analysis.coverage import blocks_for_coverage
from repro.asm.program import Program
from repro.cgra.render import render_configuration
from repro.sim.cpu import run_program
from repro.system.config import SystemConfig, paper_system
from repro.system.coupled import CoupledSimulator
from repro.system.energy import EnergyParams, energy_of, energy_ratio
from repro.system.traceeval import baseline_metrics, evaluate_trace


@dataclass
class AccelerationReport:
    """Everything measured about one (program, system) pair."""

    system: str
    instructions: int
    baseline_cycles: int
    accelerated_cycles: int
    speedup: float
    energy_ratio: float
    instructions_per_branch: float
    distinct_blocks: int
    blocks_for_80pct: int
    array_coverage: float
    cache_hit_rate: float
    translations: int
    extensions: int
    flushes: int
    misspeculations: int
    power_shares: Dict[str, float] = field(default_factory=dict)
    hottest_configs: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"=== acceleration report @ {self.system} ===",
            "",
            "characterisation",
            f"  dynamic instructions : {self.instructions:,}",
            f"  instructions/branch  : "
            f"{self.instructions_per_branch:.1f}",
            f"  distinct blocks      : {self.distinct_blocks} "
            f"({self.blocks_for_80pct} cover 80% of execution)",
            "",
            "outcome",
            f"  cycles               : {self.baseline_cycles:,} -> "
            f"{self.accelerated_cycles:,}  ({self.speedup:.2f}x)",
            f"  energy               : {self.energy_ratio:.2f}x less",
            f"  array coverage       : {self.array_coverage:.1%} of "
            "instructions",
            f"  cache hit rate       : {self.cache_hit_rate:.1%}",
            "",
            "DIM engine",
            f"  translations {self.translations}, extensions "
            f"{self.extensions}, flushes {self.flushes}, "
            f"mis-speculations {self.misspeculations}",
            "",
            "power shares (accelerated)",
        ]
        for component, share in self.power_shares.items():
            bar = "#" * int(share * 40)
            lines.append(f"  {component:6s} {share:6.1%}  {bar}")
        if self.hottest_configs:
            lines.append("")
            lines.append("hottest cached configurations")
            for text in self.hottest_configs:
                lines.append("")
                for row in text.splitlines():
                    lines.append("  " + row)
        return "\n".join(lines)


def build_report(program: Program,
                 config: Optional[SystemConfig] = None,
                 energy_params: EnergyParams = EnergyParams(),
                 max_rendered_configs: int = 2,
                 telemetry=None) -> AccelerationReport:
    """Measure ``program`` and produce an :class:`AccelerationReport`.

    An injected ``telemetry`` sink (:mod:`repro.obs`) observes the
    functional run and the trace replay; it never changes the report.
    """
    config = config or paper_system("C2", 64, True)
    plain = run_program(program, collect_trace=True, telemetry=telemetry)
    base = baseline_metrics(plain.trace, config.timing)
    metrics = evaluate_trace(plain.trace, config, telemetry=telemetry)
    profile = block_profile(plain.trace)
    coverage = blocks_for_coverage(profile, fractions=(0.8,))
    breakdown = energy_of(metrics, energy_params)
    total_power = breakdown.power_per_cycle or 1.0
    shares = {component: power / total_power
              for component, power in breakdown.component_power().items()}

    # run the coupled system to harvest real cached configurations
    sim = CoupledSimulator(program, config)
    sim.run()
    ranked = sorted(sim.engine.cache._entries.values(),
                    key=lambda c: -(c.hits * c.covered_instructions))
    rendered = [render_configuration(cfg)
                for cfg in ranked[:max_rendered_configs]]

    return AccelerationReport(
        system=config.name,
        instructions=base.instructions,
        baseline_cycles=base.cycles,
        accelerated_cycles=metrics.cycles,
        speedup=base.cycles / metrics.cycles,
        energy_ratio=energy_ratio(base, metrics, energy_params),
        instructions_per_branch=profile.instructions_per_branch,
        distinct_blocks=len(plain.trace.table),
        blocks_for_80pct=coverage[0.8],
        array_coverage=metrics.dim.array_instructions
        / max(1, base.instructions),
        cache_hit_rate=metrics.cache_hits / max(1, metrics.cache_lookups),
        translations=metrics.dim.translations,
        extensions=metrics.dim.extensions,
        flushes=metrics.dim.flushes,
        misspeculations=metrics.dim.misspeculations,
        power_shares=shares,
        hottest_configs=rendered,
    )
