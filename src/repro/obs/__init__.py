"""``repro.obs`` — the unified telemetry subsystem.

One hierarchy of named counters, timers and a bounded schema'd event
stream, threaded through every layer that used to keep private
counters: the simulator and its fast path, the DIM engine with its
reconfiguration cache and predictor, and the matrix sweep engine.

Entry points
------------
- :class:`Telemetry` — a live sink.  Inject one into
  :func:`repro.system.traceeval.evaluate_trace`,
  :func:`repro.system.sweep.evaluate_matrix`,
  :func:`repro.system.coupled.run_coupled` or
  :func:`repro.sim.run_program`; read ``.counters`` / ``.timers`` /
  ``.events`` afterwards, or stream with :meth:`Telemetry.write_jsonl`.
- :data:`NULL_TELEMETRY` — the zero-overhead default every component
  holds when nothing was injected (< 2 % replay overhead, enforced by
  ``benchmarks/bench_telemetry_overhead.py``).
- :meth:`Telemetry.snapshot` / :meth:`Telemetry.diff` — delta
  assertions for tests and benches.
- :mod:`repro.obs.schema` — the canonical dotted counter names and the
  collectors that map legacy stat objects onto them.
- :mod:`repro.obs.events` — the closed event-type schema and JSONL
  validation helpers.
"""

from repro.obs.core import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TelemetrySnapshot,
)
from repro.obs.events import (
    DEFAULT_MAX_EVENTS,
    EVENT_TYPES,
    SCHEMA_VERSION,
    EventLog,
    validate_event,
    validate_jsonl,
)
from repro.obs.schema import (
    dim_counters,
    dse_counters,
    dse_timers,
    dynflow_counters,
    engine_counters,
    mpsoc_counters,
    mpsoc_timers,
    predictor_counters,
    rcache_counters,
    serve_counters,
    serve_timers,
    sweep_counters,
    sweep_timers,
)

__all__ = [
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "TelemetrySnapshot",
    "DEFAULT_MAX_EVENTS",
    "EVENT_TYPES",
    "SCHEMA_VERSION",
    "EventLog",
    "validate_event",
    "validate_jsonl",
    "dim_counters",
    "dse_counters",
    "dse_timers",
    "dynflow_counters",
    "engine_counters",
    "mpsoc_counters",
    "mpsoc_timers",
    "predictor_counters",
    "rcache_counters",
    "serve_counters",
    "serve_timers",
    "sweep_counters",
    "sweep_timers",
]
