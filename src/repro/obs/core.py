"""Telemetry objects: named counters, timers, and the event stream.

Design rules (these are what the overhead benchmark enforces):

- Every instrumented component takes a ``telemetry`` argument and
  defaults to :data:`NULL_TELEMETRY`.  The null object carries
  ``enabled = False``; *cold* call sites guard emission with one
  attribute check, and the two *hot* sites (reconfiguration-cache
  lookup, predictor update) swap an instrumented bound method onto the
  instance only when telemetry is enabled — so the disabled path
  executes byte-for-byte the uninstrumented method bodies.
- Telemetry is purely observational: no instrumented component ever
  branches on telemetry state for anything but emission, which is why
  cycle counts and suite/sweep JSON are identical enabled or disabled
  (asserted by ``tests/test_obs.py``).
- Counters/timers are unbounded dicts; the event stream is bounded
  drop-oldest (:class:`repro.obs.events.EventLog`).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.events import (
    DEFAULT_MAX_EVENTS,
    EVENT_TYPES,
    SCHEMA_VERSION,
    EventLog,
)


@dataclass(frozen=True)
class TelemetrySnapshot:
    """An immutable point-in-time (or delta) view of a telemetry object.

    Snapshots are plain data: diffable, JSON round-trippable, and safe
    to hold across further instrumentation.  ``events_emitted`` counts
    emissions, not retained records, so deltas are exact even after the
    bounded log starts dropping.
    """

    counters: Mapping[str, int] = field(default_factory=dict)
    timers: Mapping[str, float] = field(default_factory=dict)
    events_emitted: int = 0

    def get(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    def diff(self, earlier: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """The change from ``earlier`` to this snapshot.

        Zero-delta names are omitted, so tests can assert on exactly
        the counters an operation moved.
        """
        counters = {}
        for name in set(self.counters) | set(earlier.counters):
            delta = self.counters.get(name, 0) - earlier.counters.get(
                name, 0)
            if delta:
                counters[name] = delta
        timers = {}
        for name in set(self.timers) | set(earlier.timers):
            delta = self.timers.get(name, 0.0) - earlier.timers.get(
                name, 0.0)
            if delta:
                timers[name] = delta
        return TelemetrySnapshot(
            counters=counters, timers=timers,
            events_emitted=self.events_emitted - earlier.events_emitted)

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema_version": SCHEMA_VERSION,
            "counters": dict(sorted(self.counters.items())),
            "timers": dict(sorted(self.timers.items())),
            "events_emitted": self.events_emitted,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]
                  ) -> "TelemetrySnapshot":
        return cls(counters=dict(payload.get("counters", {})),
                   timers=dict(payload.get("timers", {})),
                   events_emitted=int(payload.get("events_emitted", 0)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TelemetrySnapshot):
            return NotImplemented
        return (dict(self.counters) == dict(other.counters)
                and dict(self.timers) == dict(other.timers)
                and self.events_emitted == other.events_emitted)

    def __hash__(self) -> int:  # frozen dataclass requires pairing __eq__
        return hash((tuple(sorted(self.counters.items())),
                     tuple(sorted(self.timers.items())),
                     self.events_emitted))


class Telemetry:
    """A live sink of named counters, timers and schema'd events."""

    enabled = True

    def __init__(self, max_events: Optional[int] = DEFAULT_MAX_EVENTS):
        """``max_events`` bounds the event stream; ``None`` or ``0``
        disables event recording entirely (counters/timers still work,
        and ``emit`` still validates and counts)."""
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}
        self.events: Optional[EventLog] = (
            EventLog(max_events) if max_events else None)
        self.events_emitted = 0

    # ------------------------------------------------------------------
    # Counters and timers.
    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def count_many(self, counters: Mapping[str, int]) -> None:
        own = self.counters
        for name, n in counters.items():
            own[name] = own.get(name, 0) + n

    def add_time(self, name: str, seconds: float) -> None:
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    @contextmanager
    def timer(self, name: str):
        """``with tel.timer("phase.seconds"): ...`` convenience."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add_time(name, time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Events.
    # ------------------------------------------------------------------
    def emit(self, etype: str, **fields: object) -> None:
        """Record one event; ``etype`` must be in the closed schema."""
        if etype not in EVENT_TYPES:
            raise ValueError(f"unknown telemetry event type {etype!r} "
                             f"(schema v{SCHEMA_VERSION})")
        seq = self.events_emitted
        self.events_emitted += 1
        if self.events is not None:
            record: Dict[str, object] = {"seq": seq, "type": etype}
            record.update(fields)
            self.events.append(record)

    def absorb(self, counters: Mapping[str, int],
               timers: Mapping[str, float],
               records: Iterable[Mapping[str, object]],
               events_emitted: Optional[int] = None) -> None:
        """Fold a worker's exported payload into this telemetry.

        Used by the sweep engine's process-pool path: workers collect
        into a private Telemetry, export plain data, and the parent
        re-emits in deterministic (task-order) sequence.  If the worker
        reported a total ``events_emitted`` above its retained records
        (its bounded log dropped some), the difference is accounted
        here first, so total emission counts match a serial run.
        """
        self.count_many(counters)
        for name, seconds in timers.items():
            self.add_time(name, seconds)
        records = list(records)
        if events_emitted is not None and events_emitted > len(records):
            self.events_emitted += events_emitted - len(records)
        for record in records:
            fields = {key: value for key, value in record.items()
                      if key not in ("seq", "type")}
            self.emit(str(record["type"]), **fields)

    def export_payload(self) -> Tuple[Dict[str, int], Dict[str, float],
                                      List[Dict[str, object]], int]:
        """Plain-data form of this telemetry for cross-process return."""
        records = self.events.records if self.events is not None else []
        return (dict(self.counters), dict(self.timers), records,
                self.events_emitted)

    # ------------------------------------------------------------------
    # Snapshots and serialisation.
    # ------------------------------------------------------------------
    def snapshot(self) -> TelemetrySnapshot:
        return TelemetrySnapshot(counters=dict(self.counters),
                                 timers=dict(self.timers),
                                 events_emitted=self.events_emitted)

    def diff(self, before: TelemetrySnapshot) -> TelemetrySnapshot:
        """What changed since ``before`` (an earlier :meth:`snapshot`)."""
        return self.snapshot().diff(before)

    def meta_record(self) -> Dict[str, object]:
        recorded = len(self.events) if self.events is not None else 0
        return {
            "type": "meta",
            "schema_version": SCHEMA_VERSION,
            "events_emitted": self.events_emitted,
            "events_recorded": recorded,
            "events_dropped": self.events_emitted - recorded,
        }

    def as_dict(self) -> Dict[str, object]:
        payload = self.snapshot().as_dict()
        payload["events"] = self.meta_record()
        return payload

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def write_jsonl(self, path) -> int:
        """Write the meta header plus every recorded event as JSONL.

        Returns the number of lines written.
        """
        lines = [json.dumps(self.meta_record(), sort_keys=True)]
        if self.events is not None:
            for record in self.events:
                lines.append(json.dumps(record, sort_keys=True))
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        return len(lines)


class NullTelemetry:
    """The do-nothing default sink.

    Components hold one of these when no telemetry was injected; every
    method is a no-op and ``enabled`` is False, which is what the
    guarded call sites check.  A single shared instance
    (:data:`NULL_TELEMETRY`) is used everywhere — the object is
    stateless.
    """

    enabled = False
    events: Optional[EventLog] = None
    events_emitted = 0

    def count(self, name: str, n: int = 1) -> None:
        pass

    def count_many(self, counters: Mapping[str, int]) -> None:
        pass

    def add_time(self, name: str, seconds: float) -> None:
        pass

    @contextmanager
    def timer(self, name: str):
        yield self

    def emit(self, etype: str, **fields: object) -> None:
        pass

    def snapshot(self) -> TelemetrySnapshot:
        return TelemetrySnapshot()

    def diff(self, before: TelemetrySnapshot) -> TelemetrySnapshot:
        return TelemetrySnapshot().diff(before)


#: the shared null sink injected wherever no telemetry was supplied.
NULL_TELEMETRY = NullTelemetry()
