"""The unified counter schema: one namespaced name per system counter.

Before this module, the same quantities lived under ad-hoc spellings in
three places — :class:`repro.dim.engine.DimStats` fields, raw attribute
counters on :class:`repro.dim.rcache.ReconfigurationCache` /
:class:`repro.dim.predictor.BimodalPredictor`, and
:class:`repro.system.sweep.SweepInstrumentation`.  Those objects remain
the in-band carriers (back-compat aliases: their field names are
unchanged), but the *schema* — the canonical dotted names every export
uses — is defined here once.

Namespaces:

- ``dim.*``        DIM engine activity (translations, array events, ...)
- ``dynflow.*``    dynamic control-flow modes (loop / dual-path configs)
- ``rcache.*``     reconfiguration-cache probes and churn
- ``predictor.*``  bimodal predictor training
- ``sim.*``        functional simulator totals
- ``fastpath.*``   block-compiled engine activity
- ``sweep.*``      matrix sweep engine phases and cache outcomes
- ``serve.*``      evaluation-service queue, batching and latency
- ``dse.*``        design-space exploration budget and frontier
- ``fleet.*``      coordinator sharding, failover and load shedding
- ``mpsoc.*``      MPSoC scenario allocation, dispatch and composition
- ``corpus.*``     synthetic kernel generation and self-checking
- ``traffic.*``    traffic-mix replay against serve/fleet endpoints
"""

from __future__ import annotations

from typing import Dict

#: canonical counter name -> (carrier, legacy attribute) provenance map;
#: documentation for consumers, and the source of the collectors below.
DIM_COUNTERS = {
    "dim.translations": "translations",
    "dim.translated_instructions": "translated_instructions",
    "dim.extensions": "extensions",
    "dim.flushes": "flushes",
    "dim.array_executions": "array_executions",
    "dim.array_instructions": "array_instructions",
    "dim.array_alu_ops": "array_alu_ops",
    "dim.array_mult_ops": "array_mult_ops",
    "dim.array_mem_ops": "array_mem_ops",
    "dim.misspeculations": "misspeculations",
    "dim.full_commits": "full_commits",
    "dim.reconfiguration_stalls": "reconfiguration_stalls",
    "dim.array_cycles": "array_cycles",
    "dim.array_line_cycles": "array_line_cycles",
    "dim.array_potential_line_cycles": "array_potential_line_cycles",
    "dim.config_writes": "config_writes",
}

#: carrier: :class:`repro.dim.engine.DimStats` — the dynamic
#: control-flow additions (loop-aware and predicated dual-path
#: configurations) live in their own namespace so exports stay
#: readable when the modes are disabled (all-zero block).
DYNFLOW_COUNTERS = {
    "dynflow.loop_configs": "loop_configs",
    "dynflow.loop_executions": "loop_executions",
    "dynflow.loop_trips": "loop_trips",
    "dynflow.loop_retired": "loop_retired",
    "dynflow.dual_configs": "dual_configs",
    "dynflow.dual_executions": "dual_executions",
    "dynflow.dual_squashed_instructions": "dual_squashed_instructions",
    "dynflow.dual_retired": "dual_retired",
}

RCACHE_COUNTERS = {
    "rcache.lookups": "lookups",
    "rcache.hits": "hits",
    "rcache.insertions": "insertions",
    "rcache.evictions": "evictions",
    "rcache.invalidations": "invalidations",
}

PREDICTOR_COUNTERS = {
    "predictor.updates": "updates",
    "predictor.hits": "hits",
}

SWEEP_COUNTERS = {
    "sweep.workloads": "workloads",
    "sweep.systems": "systems",
    "sweep.cells": "cells",
    "sweep.traces_simulated": "traces_simulated",
    "sweep.traces_from_disk": "traces_from_disk",
    "sweep.traces_in_memory": "traces_in_memory",
    "sweep.cells_replayed": "cells_replayed",
    "sweep.cells_from_disk": "cells_from_disk",
    "sweep.cells_columnar": "cells_columnar",
    "sweep.columnar_fallback": "columnar_fallback",
    "sweep.baselines_computed": "baselines_computed",
    "sweep.baselines_from_disk": "baselines_from_disk",
    "sweep.alloc_hits": "alloc_hits",
    "sweep.alloc_misses": "alloc_misses",
    "sweep.artifact_hits": "artifact_hits",
    "sweep.artifact_misses": "artifact_misses",
    "sweep.artifact_stores": "artifact_stores",
}

SWEEP_TIMERS = {
    "sweep.total_seconds": "total_seconds",
    "sweep.trace_seconds": "trace_seconds",
    "sweep.replay_seconds": "replay_seconds",
}

#: carrier: :class:`repro.serve.queue.ServeStats`.  The latency names
#: are fixed histogram buckets (job submit -> terminal state) so the
#: whole distribution lives inside the closed counter schema.
SERVE_COUNTERS = {
    "serve.jobs_submitted": "jobs_submitted",
    "serve.jobs_rejected": "jobs_rejected",
    "serve.jobs_completed": "jobs_completed",
    "serve.jobs_failed": "jobs_failed",
    "serve.jobs_cancelled": "jobs_cancelled",
    "serve.jobs_timed_out": "jobs_timed_out",
    "serve.batches": "batches",
    "serve.batched_jobs": "batched_jobs",
    "serve.max_batch_width": "max_batch_width",
    "serve.retries": "retries",
    "serve.max_queue_depth": "max_queue_depth",
    "serve.latency_le_10ms": "latency_le_10ms",
    "serve.latency_le_100ms": "latency_le_100ms",
    "serve.latency_le_1s": "latency_le_1s",
    "serve.latency_le_10s": "latency_le_10s",
    "serve.latency_over_10s": "latency_over_10s",
}

SERVE_TIMERS = {
    "serve.queue_seconds": "queue_seconds",
    "serve.exec_seconds": "exec_seconds",
}

#: carrier: :class:`repro.dse.runner.DseStats`.
DSE_COUNTERS = {
    "dse.evaluations": "evaluations",
    "dse.cells": "cells",
    "dse.batches": "batches",
    "dse.full_evaluations": "full_evaluations",
    "dse.cheap_evaluations": "cheap_evaluations",
    "dse.promotions": "promotions",
    "dse.dispatched_batches": "dispatched_batches",
    "dse.frontier_points": "frontier_points",
    "dse.dominated": "dominated",
}

DSE_TIMERS = {
    "dse.total_seconds": "total_seconds",
    "dse.evaluate_seconds": "evaluate_seconds",
}

#: carrier: :class:`repro.fleet.coordinator.FleetStats`.
FLEET_COUNTERS = {
    "fleet.jobs_submitted": "jobs_submitted",
    "fleet.jobs_completed": "jobs_completed",
    "fleet.jobs_failed": "jobs_failed",
    "fleet.jobs_shed": "jobs_shed",
    "fleet.forwards": "forwards",
    "fleet.forward_failures": "forward_failures",
    "fleet.redispatch": "redispatches",
    "fleet.workers_registered": "workers_registered",
    "fleet.workers_lost": "workers_lost",
    "fleet.poll_cycles": "poll_cycles",
    "fleet.max_inflight": "max_inflight_seen",
}

FLEET_TIMERS = {
    "fleet.forward_seconds": "forward_seconds",
    "fleet.poll_seconds": "poll_seconds",
}

#: carrier: :class:`repro.mpsoc.dispatch.MpsocStats` (a ``DseStats``
#: subclass — one exploration exports both the ``dse.*`` names and
#: these scenario-layer additions).
MPSOC_COUNTERS = {
    "mpsoc.allocations_scored": "allocations_scored",
    "mpsoc.feasible_allocations": "feasible_allocations",
    "mpsoc.pruned_allocations": "pruned_allocations",
    "mpsoc.dispatch_accelerated": "dispatch_accelerated",
    "mpsoc.dispatch_plain": "dispatch_plain",
    "mpsoc.matrix_cells": "matrix_cells",
}

MPSOC_TIMERS = {
    "mpsoc.compose_seconds": "compose_seconds",
}

#: carrier: :class:`repro.corpus.manifest.CorpusStats`.
CORPUS_COUNTERS = {
    "corpus.kernels_generated": "kernels_generated",
    "corpus.kernels_verified": "kernels_verified",
    "corpus.verify_failures": "verify_failures",
    "corpus.kernels_registered": "kernels_registered",
    "corpus.dynamic_instructions": "dynamic_instructions",
}

CORPUS_TIMERS = {
    "corpus.generate_seconds": "generate_seconds",
    "corpus.verify_seconds": "verify_seconds",
}

#: carrier: :class:`repro.traffic.replay.TrafficStats`.
TRAFFIC_COUNTERS = {
    "traffic.requests_planned": "requests_planned",
    "traffic.requests_submitted": "requests_submitted",
    "traffic.requests_completed": "requests_completed",
    "traffic.requests_failed": "requests_failed",
    "traffic.requests_shed": "requests_shed",
    "traffic.requests_timed_out": "requests_timed_out",
    "traffic.hot_rotations": "hot_rotations",
    "traffic.unique_workloads": "unique_workloads",
    "traffic.max_outstanding": "max_outstanding",
}

TRAFFIC_TIMERS = {
    "traffic.run_seconds": "run_seconds",
    "traffic.submit_seconds": "submit_seconds",
    "traffic.poll_seconds": "poll_seconds",
}


def _collect(obj, mapping: Dict[str, str]) -> Dict[str, int]:
    return {name: getattr(obj, attr) for name, attr in mapping.items()}


def dim_counters(stats) -> Dict[str, int]:
    """Canonical counters of a :class:`repro.dim.engine.DimStats`."""
    return _collect(stats, DIM_COUNTERS)


def dynflow_counters(stats) -> Dict[str, int]:
    """Dynamic control-flow counters of a ``DimStats``."""
    return _collect(stats, DYNFLOW_COUNTERS)


def rcache_counters(cache) -> Dict[str, int]:
    """Canonical counters of a reconfiguration cache."""
    return _collect(cache, RCACHE_COUNTERS)


def predictor_counters(predictor) -> Dict[str, int]:
    """Canonical counters of a bimodal predictor."""
    return _collect(predictor, PREDICTOR_COUNTERS)


def engine_counters(engine) -> Dict[str, int]:
    """All counters of one :class:`repro.dim.engine.DimEngine`."""
    counters = dim_counters(engine.stats)
    counters.update(dynflow_counters(engine.stats))
    counters.update(rcache_counters(engine.cache))
    counters.update(predictor_counters(engine.predictor))
    return counters


def sweep_counters(inst) -> Dict[str, int]:
    """Canonical integer counters of a ``SweepInstrumentation``."""
    return _collect(inst, SWEEP_COUNTERS)


def sweep_timers(inst) -> Dict[str, float]:
    """Canonical timer values of a ``SweepInstrumentation``."""
    return _collect(inst, SWEEP_TIMERS)


def serve_counters(stats) -> Dict[str, int]:
    """Canonical counters of a :class:`repro.serve.queue.ServeStats`."""
    return _collect(stats, SERVE_COUNTERS)


def serve_timers(stats) -> Dict[str, float]:
    """Canonical timer values of a ``ServeStats``."""
    return _collect(stats, SERVE_TIMERS)


def dse_counters(stats) -> Dict[str, int]:
    """Canonical counters of a :class:`repro.dse.runner.DseStats`."""
    return _collect(stats, DSE_COUNTERS)


def dse_timers(stats) -> Dict[str, float]:
    """Canonical timer values of a ``DseStats``."""
    return _collect(stats, DSE_TIMERS)


def fleet_counters(stats) -> Dict[str, int]:
    """Canonical counters of a ``FleetStats``."""
    return _collect(stats, FLEET_COUNTERS)


def fleet_timers(stats) -> Dict[str, float]:
    """Canonical timer values of a ``FleetStats``."""
    return _collect(stats, FLEET_TIMERS)


def mpsoc_counters(stats) -> Dict[str, int]:
    """Scenario-layer counters of a
    :class:`repro.mpsoc.dispatch.MpsocStats` (the ``dse.*`` base
    counters come from :func:`dse_counters`)."""
    return _collect(stats, MPSOC_COUNTERS)


def mpsoc_timers(stats) -> Dict[str, float]:
    """Scenario-layer timer values of an ``MpsocStats``."""
    return _collect(stats, MPSOC_TIMERS)


def corpus_counters(stats) -> Dict[str, int]:
    """Canonical counters of a :class:`repro.corpus.manifest.CorpusStats`."""
    return _collect(stats, CORPUS_COUNTERS)


def corpus_timers(stats) -> Dict[str, float]:
    """Canonical timer values of a ``CorpusStats``."""
    return _collect(stats, CORPUS_TIMERS)


def traffic_counters(stats) -> Dict[str, int]:
    """Canonical counters of a :class:`repro.traffic.replay.TrafficStats`."""
    return _collect(stats, TRAFFIC_COUNTERS)


def traffic_timers(stats) -> Dict[str, float]:
    """Canonical timer values of a ``TrafficStats``."""
    return _collect(stats, TRAFFIC_TIMERS)
