"""The telemetry event schema and the bounded event log.

Every observable *event* in the system — as opposed to a *counter*,
which only accumulates — is one flat JSON-serialisable record:

``{"seq": <int>, "type": <schema name>, ...payload fields}``

The schema is closed: :meth:`repro.obs.Telemetry.emit` rejects event
types that are not in :data:`EVENT_TYPES`, so a JSONL stream written by
any component is schema-valid by construction and
:func:`validate_event` only needs to police *shape* (types of the
common fields and JSON-compatibility of the payload).

The log is bounded (drop-oldest) so an instrumented full-suite sweep —
hundreds of thousands of reconfiguration-cache probes — cannot grow
memory without limit; the total emitted count is always tracked, so
``dropped`` is exact.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, Iterable, List

#: bump when a record's shape or an event's meaning changes.
SCHEMA_VERSION = 1

#: default bound of one event log (drop-oldest beyond this).
DEFAULT_MAX_EVENTS = 65_536

#: The closed set of event types (plus the "meta" header record that
#: :meth:`repro.obs.Telemetry.write_jsonl` puts on the first line).
EVENT_TYPES = frozenset({
    "meta",
    # DIM binary translation lifecycle
    "translation.started",      # a block is handed to the translator
    "translation.committed",    # a configuration entered the rcache
    "translation.evicted",      # a configuration was flushed out of it
    # reconfiguration cache
    "rcache.hit",
    "rcache.miss",
    "rcache.evict",             # capacity eviction (FIFO/LRU victim)
    # bimodal predictor / speculation
    "predictor.update",
    "predictor.flush",          # mispredict-driven configuration flush
    "speculation.extension",    # a cached config was deepened
    # dynamic control-flow translation (repro.dim dynflow modes)
    "dynflow.loop_committed",   # a loop configuration entered the rcache
    "dynflow.dual_committed",   # a dual-path configuration entered it
    # sweep engine
    "sweep.cell_replayed",      # one (workload, system) cell evaluated live
    # evaluation service (repro.serve)
    "serve.job_submitted",      # a job entered the bounded queue
    "serve.batch_dispatched",   # a coalesced batch left for a worker
    "serve.job_retried",        # a worker failure triggered a retry
    "serve.job_finished",       # a job reached a terminal state
    # design-space exploration (repro.dse)
    "dse.batch_evaluated",      # a candidate batch was scored
    "dse.rung_promoted",        # shalving promoted survivors to full
    "dse.frontier_computed",    # an exploration finished its frontier
    # evaluation fleet (repro.fleet)
    "fleet.worker_registered",  # a worker shard joined the hash ring
    "fleet.worker_lost",        # heartbeats failed; shard marked dead
    "fleet.job_dispatched",     # a job was forwarded to its shard
    "fleet.job_redispatched",   # a dead shard's job moved to a survivor
    "fleet.job_shed",           # the in-flight cap rejected a submission
    "fleet.job_finished",       # a job's result (or error) was cached
    # MPSoC scenario layer (repro.mpsoc)
    "mpsoc.space_pruned",       # budget feasibility filtered the space
    "mpsoc.allocation_scored",  # one allocation dispatched + composed
    # synthetic workload corpus (repro.corpus)
    "corpus.kernel_generated",  # one kernel emitted + self-checked
    "corpus.manifest_written",  # a corpus manifest reached disk
    "corpus.registered",        # a manifest's kernels joined the registry
    # traffic replay (repro.traffic)
    "traffic.request_submitted",  # one scheduled request was submitted
    "traffic.request_finished",   # a request reached a terminal state
    "traffic.request_shed",       # backpressure rejected a submission
    "traffic.hot_rotated",        # the Zipf hot set rotated
    "traffic.replay_done",        # a replay finished; summary follows
})

_SCALAR_TYPES = (str, int, float, bool, type(None))


class EventLog:
    """Bounded drop-oldest store of telemetry event records."""

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS):
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        self.max_events = max_events
        self._records: Deque[Dict[str, object]] = deque(maxlen=max_events)
        #: total records ever appended (recorded + dropped).
        self.emitted = 0

    def append(self, record: Dict[str, object]) -> None:
        self._records.append(record)
        self.emitted += 1

    @property
    def records(self) -> List[Dict[str, object]]:
        return list(self._records)

    @property
    def dropped(self) -> int:
        return self.emitted - len(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def to_jsonl(self) -> str:
        """The recorded events, one sorted-key JSON object per line."""
        return "\n".join(json.dumps(record, sort_keys=True)
                         for record in self._records)


def validate_event(record: object) -> List[str]:
    """Schema-check one event record; returns a list of problems.

    An empty list means the record is valid.  Used by the tests and by
    consumers of ``repro sweep --telemetry`` streams.
    """
    problems: List[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, expected object"]
    etype = record.get("type")
    if etype not in EVENT_TYPES:
        problems.append(f"unknown event type {etype!r}")
    if etype == "meta":
        version = record.get("schema_version")
        if not isinstance(version, int):
            problems.append("meta record missing integer schema_version")
    else:
        seq = record.get("seq")
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
            problems.append(f"bad seq {seq!r}")
    for key, value in record.items():
        if not isinstance(key, str):
            problems.append(f"non-string field name {key!r}")
        if not isinstance(value, _SCALAR_TYPES):
            problems.append(f"field {key!r} is not a JSON scalar")
    return problems


def validate_jsonl(lines: Iterable[str]) -> List[str]:
    """Validate a whole JSONL telemetry stream; returns all problems."""
    problems: List[str] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: not JSON ({exc})")
            continue
        for problem in validate_event(record):
            problems.append(f"line {lineno}: {problem}")
    return problems
